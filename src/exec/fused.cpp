#include "src/exec/fused.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "src/common/parallel.hpp"
#include "src/exec/exec_internal.hpp"
#include "src/exec/kernels.hpp"

namespace mvd {

namespace {

bool numeric_kind(ColumnKind k) {
  return k == ColumnKind::kInt64Col || k == ColumnKind::kDoubleCol;
}

/// Compile one conjunct against `schema`, translating column indices
/// through `map` (current logical index -> source logical index). False
/// when the conjunct is not a simple typed comparison the kernels cover.
bool compile_conjunct(const ExprPtr& e, const Schema& schema,
                      const std::vector<std::size_t>& map, FilterStep& out) {
  if (e == nullptr || e->kind() != ExprKind::kComparison) return false;
  const auto& c = static_cast<const ComparisonExpr&>(*e);
  const Expr* lhs = c.lhs().get();
  const Expr* rhs = c.rhs().get();
  CompareOp op = c.op();
  if (lhs->kind() == ExprKind::kLiteral && rhs->kind() == ExprKind::kColumn) {
    std::swap(lhs, rhs);
    op = flip(op);
  }
  if (lhs->kind() != ExprKind::kColumn) return false;
  const auto li = schema.find(static_cast<const ColumnExpr&>(*lhs).name());
  if (!li.has_value()) return false;  // interpreted path raises BindError
  const ColumnKind lk = column_kind(schema.at(*li).type);
  out.op = op;
  out.lhs_col = map[*li];
  out.lhs_kind = lk;
  if (rhs->kind() == ExprKind::kLiteral) {
    const Value& v = static_cast<const LiteralExpr&>(*rhs).value();
    if (numeric_kind(lk) && is_numeric(v.type())) {
      out.shape = FilterStep::Shape::kNumColLit;
      out.num_lit = v.as_double();
      return true;
    }
    if (lk == ColumnKind::kStringCol && v.type() == ValueType::kString) {
      out.shape = FilterStep::Shape::kStrColLit;
      out.str_lit = v.as_string();
      return true;
    }
    return false;  // mixed-type / bool comparison: interpreted fallback
  }
  if (rhs->kind() != ExprKind::kColumn) return false;
  const auto ri = schema.find(static_cast<const ColumnExpr&>(*rhs).name());
  if (!ri.has_value()) return false;
  const ColumnKind rk = column_kind(schema.at(*ri).type);
  out.rhs_col = map[*ri];
  out.rhs_kind = rk;
  if (numeric_kind(lk) && numeric_kind(rk)) {
    out.shape = FilterStep::Shape::kNumColCol;
    return true;
  }
  if (lk == ColumnKind::kStringCol && rk == ColumnKind::kStringCol) {
    out.shape = FilterStep::Shape::kStrColCol;
    return true;
  }
  return false;
}

/// Can `n` join a chain? Projects always; selects only when every
/// conjunct compiles to a typed kernel against the node's input schema.
bool node_fusable(const LogicalOp& n) {
  if (n.kind() == OpKind::kProject) return true;
  if (n.kind() != OpKind::kSelect) return false;
  const auto& sel = static_cast<const SelectOp&>(n);
  const Schema& in = n.children()[0]->output_schema();
  std::vector<std::size_t> identity(in.size());
  std::iota(identity.begin(), identity.end(), std::size_t{0});
  FilterStep scratch;
  for (const ExprPtr& c : conjuncts_of(sel.predicate())) {
    if (!compile_conjunct(c, in, identity, scratch)) return false;
  }
  return true;
}

void count_uses(const PlanPtr& plan,
                std::map<const LogicalOp*, std::size_t>& counts,
                std::set<const LogicalOp*>& visited) {
  for (const PlanPtr& c : plan->children()) {
    ++counts[c.get()];
    if (visited.insert(c.get()).second) count_uses(c, counts, visited);
  }
}

// ---- Execution-time binding -------------------------------------------

/// Rewrite `(double)v OP lit` over an int64 column into an equivalent
/// pure-int64 comparison (no per-row int→double conversion in the loop).
/// Exact for every int64 v when |lit| < 2^52: int→double conversion is
/// monotone and exact on [-2^52, 2^52], and any |v| > 2^52 lands on the
/// same side of the literal after rounding since |(double)v| >= 2^52 >
/// |lit|. Ordering ops translate through floor/ceil of the literal;
/// equality keeps the double path for non-integral literals.
bool int_cmp_rewrite(CompareOp op, double lit, CompareOp& iop,
                     std::int64_t& ilit) {
  constexpr double kExact = 4503599627370496.0;  // 2^52
  if (!(lit > -kExact && lit < kExact)) return false;  // rejects NaN too
  const double fl = std::floor(lit);
  switch (op) {
    case CompareOp::kGt:  // v > 900.5  <=>  v > 900;  v > 900 unchanged
    case CompareOp::kLe:  // v <= 900.5 <=>  v <= 900
      iop = op;
      ilit = static_cast<std::int64_t>(fl);
      return true;
    case CompareOp::kGe:  // v >= 900.5 <=>  v >= 901
    case CompareOp::kLt:  // v < 900.5  <=>  v < 901
      iop = op;
      ilit = static_cast<std::int64_t>(std::ceil(lit));
      return true;
    case CompareOp::kEq:
    case CompareOp::kNe:
      if (fl != lit) return false;
      iop = op;
      ilit = static_cast<std::int64_t>(lit);
      return true;
  }
  return false;
}

/// A FilterStep bound to raw column arrays of the chain's source table.
/// Exactly one of the lhs pointers is set, per lhs_kind; rhs likewise for
/// column shapes, while literal shapes read num_lit / the str pointer.
struct BoundStep {
  FilterStep::Shape shape = FilterStep::Shape::kNumColLit;
  CompareOp op = CompareOp::kEq;
  const std::int64_t* li = nullptr;
  const double* lf = nullptr;
  const std::string* ls = nullptr;
  const std::int64_t* ri = nullptr;
  const double* rf = nullptr;
  const std::string* rs = nullptr;  // column array or the literal itself
  double num_lit = 0;
  bool use_int = false;  // int64 col-lit comparison rewritten exactly
  CompareOp iop = CompareOp::kEq;
  std::int64_t int_lit = 0;
};

BoundStep bind_step(const FilterStep& f, const VecRel& src) {
  BoundStep b;
  b.shape = f.shape;
  b.op = f.op;
  b.num_lit = f.num_lit;
  if (f.shape == FilterStep::Shape::kNumColLit &&
      f.lhs_kind == ColumnKind::kInt64Col) {
    b.use_int = int_cmp_rewrite(f.op, f.num_lit, b.iop, b.int_lit);
  }
  const ColumnTable& d = *src.data;
  const std::size_t lp = src.cols[f.lhs_col];
  switch (f.lhs_kind) {
    case ColumnKind::kInt64Col:
      b.li = d.i64(lp).data();
      break;
    case ColumnKind::kDoubleCol:
      b.lf = d.f64(lp).data();
      break;
    case ColumnKind::kStringCol:
      b.ls = d.str(lp).data();
      break;
    case ColumnKind::kBoolCol:
      MVD_ASSERT(false);  // the detector never emits bool steps
      break;
  }
  if (f.shape == FilterStep::Shape::kNumColCol ||
      f.shape == FilterStep::Shape::kStrColCol) {
    const std::size_t rp = src.cols[f.rhs_col];
    switch (f.rhs_kind) {
      case ColumnKind::kInt64Col:
        b.ri = d.i64(rp).data();
        break;
      case ColumnKind::kDoubleCol:
        b.rf = d.f64(rp).data();
        break;
      case ColumnKind::kStringCol:
        b.rs = d.str(rp).data();
        break;
      case ColumnKind::kBoolCol:
        MVD_ASSERT(false);
        break;
    }
  } else if (f.shape == FilterStep::Shape::kStrColLit) {
    b.rs = &f.str_lit;  // stable: the chain outlives the run
  }
  return b;
}

/// Filter the dense physical row range [lo, hi) through one bound
/// comparison, emitting surviving ids to `out`. Expands into the
/// monomorphic kernels of kernels.hpp.
std::size_t apply_range_step(const BoundStep& b, std::uint32_t lo,
                             std::uint32_t hi, std::uint32_t* out) {
  switch (b.shape) {
    case FilterStep::Shape::kNumColLit:
      if (b.use_int) {
        return dispatch_filter_range(b.iop, IntColAcc{b.li},
                                     IntLitAcc{b.int_lit}, lo, hi, out);
      }
      if (b.li != nullptr) {
        return dispatch_filter_range(b.op, NumColAcc<std::int64_t>{b.li},
                                     NumLitAcc{b.num_lit}, lo, hi, out);
      }
      return dispatch_filter_range(b.op, NumColAcc<double>{b.lf},
                                   NumLitAcc{b.num_lit}, lo, hi, out);
    case FilterStep::Shape::kNumColCol:
      if (b.li != nullptr && b.ri != nullptr) {
        return dispatch_filter_range(b.op, NumColAcc<std::int64_t>{b.li},
                                     NumColAcc<std::int64_t>{b.ri}, lo, hi,
                                     out);
      }
      if (b.li != nullptr) {
        return dispatch_filter_range(b.op, NumColAcc<std::int64_t>{b.li},
                                     NumColAcc<double>{b.rf}, lo, hi, out);
      }
      if (b.ri != nullptr) {
        return dispatch_filter_range(b.op, NumColAcc<double>{b.lf},
                                     NumColAcc<std::int64_t>{b.ri}, lo, hi,
                                     out);
      }
      return dispatch_filter_range(b.op, NumColAcc<double>{b.lf},
                                   NumColAcc<double>{b.rf}, lo, hi, out);
    case FilterStep::Shape::kStrColLit:
      return dispatch_filter_range(b.op, StrColAcc{b.ls}, StrLitAcc{b.rs}, lo,
                                   hi, out);
    case FilterStep::Shape::kStrColCol:
      return dispatch_filter_range(b.op, StrColAcc{b.ls}, StrColAcc{b.rs}, lo,
                                   hi, out);
  }
  MVD_ASSERT(false);
  return 0;
}

/// Filter `sel[0, n)` through one bound comparison (in place allowed).
std::size_t apply_sel_step(const BoundStep& b, const std::uint32_t* sel,
                           std::size_t n, std::uint32_t* out) {
  switch (b.shape) {
    case FilterStep::Shape::kNumColLit:
      if (b.use_int) {
        return dispatch_filter_sel(b.iop, IntColAcc{b.li},
                                   IntLitAcc{b.int_lit}, sel, n, out);
      }
      if (b.li != nullptr) {
        return dispatch_filter_sel(b.op, NumColAcc<std::int64_t>{b.li},
                                   NumLitAcc{b.num_lit}, sel, n, out);
      }
      return dispatch_filter_sel(b.op, NumColAcc<double>{b.lf},
                                 NumLitAcc{b.num_lit}, sel, n, out);
    case FilterStep::Shape::kNumColCol:
      if (b.li != nullptr && b.ri != nullptr) {
        return dispatch_filter_sel(b.op, NumColAcc<std::int64_t>{b.li},
                                   NumColAcc<std::int64_t>{b.ri}, sel, n, out);
      }
      if (b.li != nullptr) {
        return dispatch_filter_sel(b.op, NumColAcc<std::int64_t>{b.li},
                                   NumColAcc<double>{b.rf}, sel, n, out);
      }
      if (b.ri != nullptr) {
        return dispatch_filter_sel(b.op, NumColAcc<double>{b.lf},
                                   NumColAcc<std::int64_t>{b.ri}, sel, n, out);
      }
      return dispatch_filter_sel(b.op, NumColAcc<double>{b.lf},
                                 NumColAcc<double>{b.rf}, sel, n, out);
    case FilterStep::Shape::kStrColLit:
      return dispatch_filter_sel(b.op, StrColAcc{b.ls}, StrLitAcc{b.rs}, sel,
                                 n, out);
    case FilterStep::Shape::kStrColCol:
      return dispatch_filter_sel(b.op, StrColAcc{b.ls}, StrColAcc{b.rs}, sel,
                                 n, out);
  }
  MVD_ASSERT(false);
  return 0;
}

/// Same accounting as VecRel::blocks() over an arbitrary row count.
double blocks_of(double rows, double blocking_factor) {
  if (rows == 0) return 0;
  return std::max(1.0, std::ceil(rows / blocking_factor));
}

/// One bound numeric key column (join / group keys).
struct NumKeyCol {
  const std::int64_t* i = nullptr;
  const double* f = nullptr;
  double at(std::uint32_t r) const {
    return i != nullptr ? static_cast<double>(i[r]) : f[r];
  }
};

NumKeyCol bind_num_key(const ColumnTable& d, std::size_t c) {
  NumKeyCol k;
  if (d.kind(c) == ColumnKind::kInt64Col) {
    k.i = d.i64(c).data();
  } else {
    k.f = d.f64(c).data();
  }
  return k;
}

/// Pack up to two numeric key cells into a join key; false when any cell
/// is NaN (NaN joins nothing under numeric equality — the interpreted
/// engine's x != y test fails for NaN, so those rows are dropped here).
bool pack_join_key(const NumKeyCol* cols, std::size_t nk, std::uint32_t r,
                   PackedKey& out) {
  const double v0 = cols[0].at(r);
  if (v0 != v0) return false;
  out.a = key_bits_join(v0);
  out.b = 0;
  if (nk == 2) {
    const double v1 = cols[1].at(r);
    if (v1 != v1) return false;
    out.b = key_bits_join(v1);
  }
  return true;
}

}  // namespace

std::map<const LogicalOp*, std::size_t> plan_use_counts(const PlanPtr& plan) {
  std::map<const LogicalOp*, std::size_t> counts;
  std::set<const LogicalOp*> visited;
  counts[plan.get()] = 1;
  count_uses(plan, counts, visited);
  return counts;
}

std::optional<FusedChain> detect_fused_chain(
    const PlanPtr& plan,
    const std::map<const LogicalOp*, std::size_t>& use_count) {
  if (plan->kind() != OpKind::kSelect && plan->kind() != OpKind::kProject) {
    return std::nullopt;
  }
  if (!node_fusable(*plan)) return std::nullopt;

  // Downward walk collecting the maximal chain (top-down). An interior
  // node joins only when it is fusable AND has exactly one parent —
  // fusing through a shared node would re-run it once per consumer
  // instead of once per run (and skip its memo entry).
  std::vector<PlanPtr> nodes;
  PlanPtr cur = plan;
  while (true) {
    nodes.push_back(cur);
    const PlanPtr& child = cur->children()[0];
    if (child->kind() != OpKind::kSelect &&
        child->kind() != OpKind::kProject) {
      break;
    }
    const auto it = use_count.find(child.get());
    if (it != use_count.end() && it->second > 1) break;
    if (!node_fusable(*child)) break;
    cur = child;
  }

  // Bottom-up compile: resolve every column reference down to an index of
  // the source schema, folding project re-maps as they appear.
  FusedChain chain;
  chain.source = nodes.back()->children()[0];
  Schema cur_schema = chain.source->output_schema();
  std::vector<std::size_t> map(cur_schema.size());
  std::iota(map.begin(), map.end(), std::size_t{0});
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    const LogicalOp& n = **it;
    FusedStage stage;
    stage.kind = n.kind();
    stage.label = n.label();
    if (n.kind() == OpKind::kSelect) {
      const auto& sel = static_cast<const SelectOp&>(n);
      for (const ExprPtr& c : conjuncts_of(sel.predicate())) {
        FilterStep step;
        if (!compile_conjunct(c, cur_schema, map, step)) return std::nullopt;
        stage.steps.push_back(std::move(step));
      }
      // A degenerate predicate with no conjuncts has nothing to fuse.
      if (stage.steps.empty()) return std::nullopt;
      ++chain.select_count;
    } else {
      const auto& proj = static_cast<const ProjectOp&>(n);
      std::vector<std::size_t> next;
      next.reserve(proj.columns().size());
      for (const std::string& c : proj.columns()) {
        next.push_back(map[cur_schema.index_of(c)]);
      }
      map = std::move(next);
      cur_schema = n.output_schema();
    }
    chain.stages.push_back(std::move(stage));
  }
  // A pure projection chain is already free in the interpreted engine.
  if (chain.select_count == 0) return std::nullopt;
  chain.out_cols = std::move(map);
  chain.out_schema = std::move(cur_schema);
  return chain;
}

VecRel run_fused_chain(const FusedChain& chain, const VecRel& src,
                       std::size_t threads, ExecStats* stats,
                       double* op_blocks, double* op_rows) {
  TraceSpan span("exec.kernel", "chain");

  // Bind all select stages to the source's physical columns once.
  std::vector<std::vector<BoundStep>> selects;
  selects.reserve(chain.select_count);
  for (const FusedStage& st : chain.stages) {
    if (st.kind != OpKind::kSelect) continue;
    std::vector<BoundStep> bound;
    bound.reserve(st.steps.size());
    for (const FilterStep& f : st.steps) bound.push_back(bind_step(f, src));
    selects.push_back(std::move(bound));
  }
  const std::size_t ns = selects.size();

  // Every source morsel runs through the whole chain in one stint. The
  // very first conjunct filters the dense physical range directly when
  // the source is an identity view (survivor ids are implicit — nothing
  // is materialized for the full morsel) or reads straight out of the
  // source's selection slice otherwise; every later conjunct shrinks the
  // survivor buffer in place, so the scan narrows exactly like the
  // interpreted engine's conjunct short-circuit without its per-node
  // selection-vector round-trips. Morsels are fixed over the *source*
  // rows and survivors concatenate in morsel order, so output order
  // matches the interpreted engine at any thread count (order-preserving
  // filters compose independently of where morsel boundaries fall).
  const std::size_t n0 = src.active_rows();
  const std::size_t morsels = morsel_count(n0);
  // One survivor buffer per shard, not per morsel: shards own contiguous
  // morsel ranges in shard order, so concatenating the shard buffers
  // reproduces morsel order with a handful of allocations total.
  std::vector<std::vector<std::uint32_t>> parts(morsels);
  std::vector<std::size_t> counts(morsels * ns, 0);
  parallel_shards(
      morsels, threads, [&](std::size_t t, std::size_t mb, std::size_t me) {
        WorkerProbe wp(kernel_worker_track(), "chain");
        std::vector<std::uint32_t> buf(kMorselRows);
        std::vector<std::uint32_t>& mine = parts[t];
        const std::vector<BoundStep>& first = selects[0];
        for (std::size_t m = mb; m < me; ++m) {
          const std::size_t lo = m * kMorselRows;
          const std::size_t hi = std::min(n0, lo + kMorselRows);
          std::size_t cnt =
              src.identity
                  ? apply_range_step(first[0], static_cast<std::uint32_t>(lo),
                                     static_cast<std::uint32_t>(hi),
                                     buf.data())
                  : apply_sel_step(first[0], src.sel.data() + lo, hi - lo,
                                   buf.data());
          for (std::size_t c = 1; c < first.size() && cnt > 0; ++c) {
            cnt = apply_sel_step(first[c], buf.data(), cnt, buf.data());
          }
          counts[m * ns] = cnt;
          for (std::size_t s = 1; s < ns; ++s) {
            for (const BoundStep& b : selects[s]) {
              if (cnt == 0) break;
              cnt = apply_sel_step(b, buf.data(), cnt, buf.data());
            }
            counts[m * ns + s] = cnt;
          }
          mine.insert(mine.end(), buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(cnt));
        }
      });

  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  VecRel out;
  out.data = src.data;
  out.identity = false;
  out.sel.reserve(total);
  for (const auto& p : parts) out.sel.insert(out.sel.end(), p.begin(), p.end());
  out.cols.reserve(chain.out_cols.size());
  for (const std::size_t c : chain.out_cols) out.cols.push_back(src.cols[c]);
  out.schema = chain.out_schema;
  out.blocking_factor = src.blocking_factor;

  // Replicate the interpreted engine's per-node stats arithmetic: each
  // select charges its (chain-internal) input's blocks, rows and morsel
  // count; projects only record rows_out. Interior cardinalities fall out
  // of the per-morsel survivor counts.
  std::vector<std::size_t> select_out(ns, 0);
  for (std::size_t m = 0; m < morsels; ++m) {
    for (std::size_t s = 0; s < ns; ++s) select_out[s] += counts[m * ns + s];
  }
  if (stats != nullptr || op_blocks != nullptr || op_rows != nullptr) {
    std::size_t flowing = n0;
    std::size_t s = 0;
    for (const FusedStage& st : chain.stages) {
      if (st.kind == OpKind::kSelect) {
        const double in_rows = static_cast<double>(flowing);
        const double in_blocks = blocks_of(in_rows, src.blocking_factor);
        if (stats != nullptr) {
          stats->blocks_read += in_blocks;
          stats->rows_scanned += in_rows;
          stats->batches += static_cast<double>(morsel_count(flowing));
          stats->rows_out[st.label] = static_cast<double>(select_out[s]);
        }
        const auto k = static_cast<std::size_t>(OpKind::kSelect);
        if (op_blocks != nullptr) op_blocks[k] += in_blocks;
        if (op_rows != nullptr) op_rows[k] += in_rows;
        flowing = select_out[s];
        ++s;
      } else if (stats != nullptr) {
        stats->rows_out[st.label] = static_cast<double>(flowing);
      }
    }
  }

  if (counters_enabled()) {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("exec/kernel/chains").add(1);
    reg.counter("exec/kernel/fused_ops")
        .add(static_cast<double>(chain.stages.size()));
    reg.counter("exec/kernel/rows_in").add(static_cast<double>(n0));
    reg.counter("exec/kernel/rows_out").add(static_cast<double>(total));
  }
  if (span.active()) {
    span.arg("ops", static_cast<double>(chain.stages.size()));
    span.arg("selects", static_cast<double>(ns));
    span.arg("rows_in", static_cast<double>(n0));
    span.arg("rows_out", static_cast<double>(total));
    span.arg("morsels", static_cast<double>(morsels));
  }
  return out;
}

bool fused_join_keys_ok(const ColumnTable& build,
                        const std::vector<std::size_t>& build_keys,
                        const ColumnTable& probe,
                        const std::vector<std::size_t>& probe_keys) {
  if (build_keys.empty() || build_keys.size() > 2) return false;
  for (const std::size_t c : build_keys) {
    if (!numeric_kind(build.kind(c))) return false;
  }
  for (const std::size_t c : probe_keys) {
    if (!numeric_kind(probe.kind(c))) return false;
  }
  return true;
}

JoinPairs run_fused_join(const VecRel& build,
                         const std::vector<std::size_t>& build_keys,
                         const VecRel& probe,
                         const std::vector<std::size_t>& probe_keys,
                         std::size_t threads) {
  TraceSpan span("exec.kernel", "join-probe");
  const std::size_t nk = build_keys.size();
  NumKeyCol bkc[2], pkc[2];
  for (std::size_t k = 0; k < nk; ++k) {
    bkc[k] = bind_num_key(*build.data, build_keys[k]);
    pkc[k] = bind_num_key(*probe.data, probe_keys[k]);
  }

  // Build phase: pack key columns morsel-parallel, then insert serially
  // in active order so per-key chains — and therefore match emission
  // order — are deterministic.
  const std::size_t nb = build.active_rows();
  std::vector<PackedKey> bkeys(nb);
  std::vector<std::uint8_t> bok(nb);
  parallel_shards(morsel_count(nb), threads,
                  [&](std::size_t, std::size_t mb, std::size_t me) {
                    WorkerProbe wp(kernel_worker_track(), "join-build-key");
                    const std::size_t lo = mb * kMorselRows;
                    const std::size_t hi = std::min(nb, me * kMorselRows);
                    for (std::size_t i = lo; i < hi; ++i) {
                      bok[i] = pack_join_key(bkc, nk, build.physical(i),
                                             bkeys[i])
                                   ? 1
                                   : 0;
                    }
                  });
  JoinKeyMap table(nb);
  for (std::size_t i = 0; i < nb; ++i) {
    if (bok[i] != 0) table.insert(bkeys[i], build.physical(i));
  }

  // Probe phase: morsel-parallel, matches concatenated in morsel order.
  const std::size_t np = probe.active_rows();
  const std::size_t pm = morsel_count(np);
  std::vector<JoinPairs> chunks(pm);
  parallel_shards(
      pm, threads, [&](std::size_t, std::size_t mb, std::size_t me) {
        WorkerProbe wp(kernel_worker_track(), "join-probe");
        for (std::size_t m = mb; m < me; ++m) {
          const std::size_t lo = m * kMorselRows;
          const std::size_t hi = std::min(np, lo + kMorselRows);
          JoinPairs& ch = chunks[m];
          PackedKey key;
          for (std::size_t i = lo; i < hi; ++i) {
            const std::uint32_t r = probe.physical(i);
            if (!pack_join_key(pkc, nk, r, key)) continue;
            for (std::int32_t e = table.find(key); e >= 0;
                 e = table.entry(e).next) {
              ch.probe_rows.push_back(r);
              ch.build_rows.push_back(table.entry(e).row);
            }
          }
        }
      });

  JoinPairs out;
  std::size_t total = 0;
  for (const JoinPairs& ch : chunks) total += ch.probe_rows.size();
  out.probe_rows.reserve(total);
  out.build_rows.reserve(total);
  for (const JoinPairs& ch : chunks) {
    out.probe_rows.insert(out.probe_rows.end(), ch.probe_rows.begin(),
                          ch.probe_rows.end());
    out.build_rows.insert(out.build_rows.end(), ch.build_rows.begin(),
                          ch.build_rows.end());
  }

  if (counters_enabled()) {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("exec/kernel/join_build_rows").add(static_cast<double>(nb));
    reg.counter("exec/kernel/join_probe_rows").add(static_cast<double>(np));
    reg.counter("exec/kernel/join_matches").add(static_cast<double>(total));
  }
  if (span.active()) {
    span.arg("build_rows", static_cast<double>(nb));
    span.arg("probe_rows", static_cast<double>(np));
    span.arg("matches", static_cast<double>(total));
    span.arg("keys", static_cast<double>(nk));
  }
  return out;
}

bool fused_aggregate_ok(const AggregateOp& op, const ColumnTable& data,
                        const std::vector<std::size_t>& group_cols,
                        const std::vector<std::size_t>& agg_cols) {
  if (group_cols.size() > 2) return false;
  for (const std::size_t c : group_cols) {
    if (data.kind(c) == ColumnKind::kStringCol) return false;
  }
  const std::vector<AggSpec>& aggs = op.aggregates();
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    const AggFn fn = aggs[a].fn;
    if (fn != AggFn::kCount && fn != AggFn::kSum && fn != AggFn::kAvg) {
      return false;  // MIN/MAX carry Values, SUM_INT is rare: interpreted path
    }
    if (fn != AggFn::kCount && agg_cols[a] != SIZE_MAX &&
        !numeric_kind(data.kind(agg_cols[a]))) {
      return false;
    }
  }
  return true;
}

VecRel run_fused_aggregate(const AggregateOp& op, const VecRel& in,
                           const std::vector<std::size_t>& group_cols,
                           const std::vector<std::size_t>& agg_cols,
                           std::size_t threads) {
  TraceSpan span("exec.kernel", "aggregate");
  const ColumnTable& data = *in.data;
  const std::size_t n = in.active_rows();
  const std::size_t morsels = morsel_count(n);
  const std::size_t ngc = group_cols.size();
  const std::size_t naggs = agg_cols.size();

  // Bind group key columns. Raw double bit patterns (via key_bits_raw)
  // reproduce the packed-string key equality of the interpreted engine
  // exactly — including -0.0 vs 0.0 grouping separately. Bool columns
  // contribute a 0/1 word.
  struct GKeyCol {
    const std::int64_t* i = nullptr;
    const double* f = nullptr;
    const std::uint8_t* b = nullptr;
    std::uint64_t bits(std::uint32_t r) const {
      if (i != nullptr) return key_bits_raw(static_cast<double>(i[r]));
      if (f != nullptr) return key_bits_raw(f[r]);
      return b[r] != 0 ? 1 : 0;
    }
  };
  GKeyCol gkc[2];
  for (std::size_t k = 0; k < ngc; ++k) {
    const std::size_t c = group_cols[k];
    switch (data.kind(c)) {
      case ColumnKind::kInt64Col:
        gkc[k].i = data.i64(c).data();
        break;
      case ColumnKind::kDoubleCol:
        gkc[k].f = data.f64(c).data();
        break;
      case ColumnKind::kBoolCol:
        gkc[k].b = data.b8(c).data();
        break;
      case ColumnKind::kStringCol:
        MVD_ASSERT(false);  // excluded by fused_aggregate_ok
        break;
    }
  }
  const auto make_key = [&](std::uint32_t r) {
    PackedKey k;
    if (ngc > 0) k.a = gkc[0].bits(r);
    if (ngc > 1) k.b = gkc[1].bits(r);
    return k;
  };

  // Bind aggregate inputs: SIZE_MAX (COUNT *) contributes a constant 1,
  // exactly what the interpreted engine feeds its accumulators; for
  // COUNT(col) the cell value never reaches the result, so non-numeric
  // columns contribute 0 to the (unused) sum.
  struct AggCol {
    const std::int64_t* i = nullptr;
    const double* f = nullptr;
    double constant = 0;
    double at(std::uint32_t r) const {
      if (i != nullptr) return static_cast<double>(i[r]);
      if (f != nullptr) return f[r];
      return constant;
    }
  };
  std::vector<AggCol> acols(naggs);
  for (std::size_t a = 0; a < naggs; ++a) {
    if (agg_cols[a] == SIZE_MAX) {
      acols[a].constant = 1;
      continue;
    }
    const std::size_t c = agg_cols[a];
    if (data.kind(c) == ColumnKind::kInt64Col) {
      acols[a].i = data.i64(c).data();
    } else if (data.kind(c) == ColumnKind::kDoubleCol) {
      acols[a].f = data.f64(c).data();
    }
    // Other kinds: constant 0 (only reachable under COUNT(col)).
  }

  /// Packed-key group table with per-(group, aggregate) count/sum pairs.
  struct Groups {
    GroupKeyMap index;
    std::vector<PackedKey> keys;
    std::vector<std::uint32_t> first_row;
    std::vector<double> count, sum;  // group-major, naggs per group
  };
  const auto add_row = [&](Groups& g, std::uint32_t r) {
    const PackedKey key = make_key(r);
    const auto next = static_cast<std::int32_t>(g.keys.size());
    const std::int32_t gi = g.index.find_or_insert(key, next);
    if (gi == next) {
      g.keys.push_back(key);
      g.first_row.push_back(r);
      g.count.resize(g.count.size() + naggs, 0);
      g.sum.resize(g.sum.size() + naggs, 0);
    }
    const std::size_t base = static_cast<std::size_t>(gi) * naggs;
    for (std::size_t a = 0; a < naggs; ++a) {
      g.count[base + a] += 1;
      g.sum[base + a] += acols[a].at(r);
    }
  };

  Groups global;
  if (threads <= 1 || morsels <= 1) {
    // Single pass; accumulation order matches the interpreted serial
    // path row for row (same floating-point addition order).
    for (std::size_t i = 0; i < n; ++i) add_row(global, in.physical(i));
  } else {
    // Per-morsel partials merged in morsel order — the same partial
    // boundaries and merge order as the interpreted parallel path, so
    // group order and floating-point sums agree bit for bit.
    std::vector<Groups> partials(morsels);
    parallel_shards(
        morsels, threads, [&](std::size_t, std::size_t mb, std::size_t me) {
          WorkerProbe wp(kernel_worker_track(), "aggregate-partial");
          for (std::size_t m = mb; m < me; ++m) {
            const std::size_t lo = m * kMorselRows;
            const std::size_t hi = std::min(n, lo + kMorselRows);
            Groups& p = partials[m];
            for (std::size_t i = lo; i < hi; ++i) add_row(p, in.physical(i));
          }
        });
    for (const Groups& p : partials) {
      for (std::size_t g = 0; g < p.keys.size(); ++g) {
        const auto next = static_cast<std::int32_t>(global.keys.size());
        const std::int32_t gi = global.index.find_or_insert(p.keys[g], next);
        const std::size_t src_base = g * naggs;
        if (gi == next) {
          global.keys.push_back(p.keys[g]);
          global.first_row.push_back(p.first_row[g]);
          global.count.insert(global.count.end(),
                              p.count.begin() + src_base,
                              p.count.begin() + src_base + naggs);
          global.sum.insert(global.sum.end(), p.sum.begin() + src_base,
                            p.sum.begin() + src_base + naggs);
        } else {
          const std::size_t dst = static_cast<std::size_t>(gi) * naggs;
          for (std::size_t a = 0; a < naggs; ++a) {
            global.count[dst + a] += p.count[src_base + a];
            global.sum[dst + a] += p.sum[src_base + a];
          }
        }
      }
    }
  }

  // SQL semantics: a global aggregate over an empty input yields one row
  // (zero count/sum), same as the interpreted engines.
  const bool empty_global = global.keys.empty() && op.group_by().empty();
  const Schema& os = op.output_schema();
  auto out = std::make_shared<ColumnTable>(os, in.blocking_factor);
  const std::size_t ngroups = empty_global ? 1 : global.keys.size();
  for (std::size_t g = 0; g < ngroups; ++g) {
    for (std::size_t k = 0; k < ngc; ++k) {
      out->append_value(k, data.value_at(global.first_row[g], group_cols[k]));
    }
    for (std::size_t a = 0; a < naggs; ++a) {
      const double cnt = empty_global ? 0 : global.count[g * naggs + a];
      const double sum = empty_global ? 0 : global.sum[g * naggs + a];
      Value v;
      switch (op.aggregates()[a].fn) {
        case AggFn::kCount:
          v = Value::int64(static_cast<std::int64_t>(cnt));
          break;
        case AggFn::kSum:
          v = Value::real(sum);
          break;
        case AggFn::kAvg:
          v = Value::real(cnt > 0 ? sum / cnt : 0.0);
          break;
        case AggFn::kMin:
        case AggFn::kMax:
        case AggFn::kSumInt:
          MVD_ASSERT(false);  // excluded by fused_aggregate_ok
          break;
      }
      out->append_value(ngc + a, v);
    }
  }
  out->set_row_count(ngroups);

  if (counters_enabled()) {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("exec/kernel/agg_rows").add(static_cast<double>(n));
    reg.counter("exec/kernel/agg_groups").add(static_cast<double>(ngroups));
  }
  if (span.active()) {
    span.arg("rows", static_cast<double>(n));
    span.arg("groups", static_cast<double>(ngroups));
    span.arg("morsels", static_cast<double>(morsels));
  }

  VecRel r;
  r.data = std::move(out);
  r.identity = true;
  r.cols.resize(os.size());
  std::iota(r.cols.begin(), r.cols.end(), std::size_t{0});
  r.schema = os;
  r.blocking_factor = in.blocking_factor;
  return r;
}

}  // namespace mvd
