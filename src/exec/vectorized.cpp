#include "src/exec/vectorized.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "src/algebra/eval.hpp"
#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/hash.hpp"
#include "src/common/parallel.hpp"
#include "src/exec/exec_internal.hpp"
#include "src/exec/fused.hpp"
#include "src/exec/vec_internal.hpp"
#include "src/obs/trace.hpp"

namespace mvd {

std::shared_ptr<const ColumnTable> ColumnTableCache::get(const Table& table) {
  auto it = cache_.find(&table);
  if (it != cache_.end() && it->second.rows == table.row_count()) {
    return it->second.data;
  }
  auto data =
      std::make_shared<const ColumnTable>(ColumnTable::from_table(table));
  cache_[&table] = {table.row_count(), data};
  return data;
}

namespace {

class VectorizedEngine {
 public:
  VectorizedEngine(const Database& db, ExecStats* stats, std::size_t threads,
                   ColumnTableCache& cache, bool fused)
      : db_(&db),
        stats_(stats),
        threads_(threads),
        cache_(&cache),
        fused_(fused) {}

  Table run(const PlanPtr& plan) {
    MVD_ASSERT(plan != nullptr);
    if (fused_) uses_ = plan_use_counts(plan);
    Table out = sink(node(plan));
    if (counters_enabled() && stats_ != nullptr) {
      publish_op_tallies(fused_ ? "fused" : "vec", op_blocks_, op_rows_);
    }
    return out;
  }

 private:
  const VecRel& node(const PlanPtr& plan) {
    if (auto it = memo_.find(plan.get()); it != memo_.end()) {
      return it->second;
    }
    if (fused_) {
      if (auto chain = detect_fused_chain(plan, uses_)) {
        const VecRel& src = node(chain->source);
        VecRel result =
            run_fused_chain(*chain, src, threads_, stats_, op_blocks_,
                            op_rows_);
        return memo_.emplace(plan.get(), std::move(result)).first->second;
      }
      if (plan->kind() == OpKind::kSelect && counters_enabled()) {
        MetricsRegistry::global().counter("exec/kernel/fallbacks").add(1);
      }
    }
    // Children first (same order as the switch below used to evaluate
    // them), so the operator's span and per-op tallies cover its own
    // work only.
    std::vector<const VecRel*> in;
    in.reserve(plan->children().size());
    for (const PlanPtr& c : plan->children()) in.push_back(&node(c));

    const double blocks0 = stats_ != nullptr ? stats_->blocks_read : 0;
    const double rows0 = stats_ != nullptr ? stats_->rows_scanned : 0;
    const double batches0 = stats_ != nullptr ? stats_->batches : 0;
    TraceSpan span("exec.vec", kExecOpNames[static_cast<std::size_t>(
                                   plan->kind())]);
    VecRel result;
    switch (plan->kind()) {
      case OpKind::kScan:
        result = scan(static_cast<const ScanOp&>(*plan));
        break;
      case OpKind::kSelect:
        result = select(static_cast<const SelectOp&>(*plan), *in[0]);
        break;
      case OpKind::kProject:
        result = project(static_cast<const ProjectOp&>(*plan), *in[0]);
        break;
      case OpKind::kJoin:
        result = join(static_cast<const JoinOp&>(*plan), *in[0], *in[1]);
        break;
      case OpKind::kAggregate:
        result = aggregate(static_cast<const AggregateOp&>(*plan), *in[0]);
        break;
    }
    if (stats_ != nullptr) {
      stats_->rows_out[plan->label()] =
          static_cast<double>(result.active_rows());
      const auto k = static_cast<std::size_t>(plan->kind());
      op_blocks_[k] += stats_->blocks_read - blocks0;
      op_rows_[k] += stats_->rows_scanned - rows0;
    }
    if (span.active()) {
      span.arg("label", plan->label());
      span.arg("rows_out", static_cast<double>(result.active_rows()));
      if (stats_ != nullptr) {
        span.arg("blocks_read", stats_->blocks_read - blocks0);
        span.arg("rows_scanned", stats_->rows_scanned - rows0);
        span.arg("morsels", stats_->batches - batches0);
      }
    }
    return memo_.emplace(plan.get(), std::move(result)).first->second;
  }

  VecRel scan(const ScanOp& op) {
    const Table& src = db_->table(op.relation());
    if (src.schema().size() != op.output_schema().size()) {
      throw ExecError("stored table '" + op.relation() +
                      "' does not match the scan schema");
    }
    VecRel r;
    r.data = cache_->get(src);
    // Rebinding to the plan's (qualified) schema is free: only the
    // logical schema changes, the arrays are shared.
    for (std::size_t c = 0; c < src.schema().size(); ++c) {
      if (column_kind(op.output_schema().at(c).type) != r.data->kind(c)) {
        throw ExecError("stored table '" + op.relation() +
                        "' does not match the scan schema");
      }
    }
    r.identity = true;
    r.cols.resize(src.schema().size());
    std::iota(r.cols.begin(), r.cols.end(), std::size_t{0});
    r.schema = op.output_schema();
    r.blocking_factor = src.blocking_factor();
    if (stats_ != nullptr) {
      stats_->blocks_read += src.blocks();
      stats_->rows_scanned += static_cast<double>(src.row_count());
      stats_->batches += static_cast<double>(morsel_count(src.row_count()));
    }
    return r;
  }

  /// Morsel-parallel filter of `in`'s active rows; per-morsel survivors
  /// are concatenated in morsel order, so the result is independent of
  /// the thread count.
  std::vector<std::uint32_t> filter_rows(const VecRel& in,
                                         const CompiledExpr& pred) {
    const std::size_t n = in.active_rows();
    const std::size_t morsels = morsel_count(n);
    std::vector<std::vector<std::uint32_t>> parts(morsels);
    parallel_shards(morsels, threads_,
                    [&](std::size_t, std::size_t mb, std::size_t me) {
                      WorkerProbe wp(vec_worker_track(), "filter");
                      for (std::size_t m = mb; m < me; ++m) {
                        const std::size_t lo = m * kMorselRows;
                        const std::size_t hi = std::min(n, lo + kMorselRows);
                        std::vector<std::uint32_t> part;
                        part.reserve(hi - lo);
                        for (std::size_t i = lo; i < hi; ++i) {
                          part.push_back(in.physical(i));
                        }
                        pred.filter_batch(*in.data, in.cols, part);
                        parts[m] = std::move(part);
                      }
                    });
    std::size_t total = 0;
    for (const auto& p : parts) total += p.size();
    std::vector<std::uint32_t> sel;
    sel.reserve(total);
    for (const auto& p : parts) sel.insert(sel.end(), p.begin(), p.end());
    return sel;
  }

  VecRel select(const SelectOp& op, const VecRel& in) {
    const CompiledExpr pred(op.predicate(), in.schema);
    VecRel r;
    r.data = in.data;
    r.identity = false;
    r.sel = filter_rows(in, pred);
    r.cols = in.cols;
    r.schema = in.schema;
    r.blocking_factor = in.blocking_factor;
    if (stats_ != nullptr) {
      stats_->blocks_read += in.blocks();
      stats_->rows_scanned += static_cast<double>(in.active_rows());
      stats_->batches += static_cast<double>(morsel_count(in.active_rows()));
    }
    return r;
  }

  VecRel project(const ProjectOp& op, const VecRel& in) {
    // Pure column remap: no data movement, no row movement.
    VecRel r;
    r.data = in.data;
    r.identity = in.identity;
    r.sel = in.sel;
    r.schema = op.output_schema();
    r.blocking_factor = in.blocking_factor;
    r.cols.reserve(op.columns().size());
    for (const std::string& c : op.columns()) {
      r.cols.push_back(in.cols[in.schema.index_of(c)]);
    }
    return r;
  }

  /// Compact matched (left, right) physical row pairs into a fresh
  /// ColumnTable under the join's output schema, gathering column by
  /// column (columns are independent, so the gather parallelizes without
  /// affecting the output).
  VecRel gather_join(const JoinOp& op, const VecRel& left, const VecRel& right,
                     const std::vector<std::uint32_t>& lrows,
                     const std::vector<std::uint32_t>& rrows) {
    auto data = std::make_shared<ColumnTable>(op.output_schema(),
                                              left.blocking_factor);
    const std::size_t nl = left.schema.size();
    const std::size_t total_cols = nl + right.schema.size();
    parallel_for_each_index(total_cols, threads_, [&](std::size_t c) {
      WorkerProbe wp(vec_worker_track(), "join-gather");
      if (c < nl) {
        data->append_gather(c, *left.data, left.cols[c], lrows.data(),
                            lrows.size());
      } else {
        data->append_gather(c, *right.data, right.cols[c - nl], rrows.data(),
                            rrows.size());
      }
    });
    data->set_row_count(lrows.size());
    VecRel r;
    r.data = std::move(data);
    r.identity = true;
    r.cols.resize(total_cols);
    std::iota(r.cols.begin(), r.cols.end(), std::size_t{0});
    r.schema = op.output_schema();
    r.blocking_factor = left.blocking_factor;
    return r;
  }

  /// The interpreted equi-join: hash key columns morsel-parallel, insert
  /// serially in active order (deterministic chain order), probe
  /// morsel-parallel with matches concatenated in morsel order.
  JoinPairs hash_join_pairs(const VecRel& build,
                            const std::vector<std::size_t>& build_keys,
                            const VecRel& probe,
                            const std::vector<std::size_t>& probe_keys) {
    const std::size_t nb = build.active_rows();
    std::vector<std::uint64_t> build_hash(nb);
    parallel_shards(morsel_count(nb), threads_,
                    [&](std::size_t, std::size_t mb, std::size_t me) {
                      WorkerProbe wp(vec_worker_track(), "join-build-hash");
                      const std::size_t lo = mb * kMorselRows;
                      const std::size_t hi = std::min(nb, me * kMorselRows);
                      for (std::size_t i = lo; i < hi; ++i) {
                        build_hash[i] = column_hash_keys(
                            *build.data, build_keys, build.physical(i));
                      }
                    });
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> table;
    table.reserve(nb);
    for (std::size_t i = 0; i < nb; ++i) {
      table[build_hash[i]].push_back(build.physical(i));
    }

    const std::size_t np = probe.active_rows();
    const std::size_t pm = morsel_count(np);
    std::vector<JoinPairs> chunks(pm);
    parallel_shards(
        pm, threads_, [&](std::size_t, std::size_t mb, std::size_t me) {
          WorkerProbe wp(vec_worker_track(), "join-probe");
          for (std::size_t m = mb; m < me; ++m) {
            const std::size_t lo = m * kMorselRows;
            const std::size_t hi = std::min(np, lo + kMorselRows);
            JoinPairs& ch = chunks[m];
            for (std::size_t i = lo; i < hi; ++i) {
              const std::uint32_t pr = probe.physical(i);
              const auto it = table.find(
                  column_hash_keys(*probe.data, probe_keys, pr));
              if (it == table.end()) continue;
              for (const std::uint32_t br : it->second) {
                if (column_keys_equal(*probe.data, probe_keys, pr,
                                      *build.data, build_keys, br)) {
                  ch.probe_rows.push_back(pr);
                  ch.build_rows.push_back(br);
                }
              }
            }
          }
        });
    JoinPairs out;
    std::size_t total = 0;
    for (const JoinPairs& ch : chunks) total += ch.probe_rows.size();
    out.probe_rows.reserve(total);
    out.build_rows.reserve(total);
    for (const JoinPairs& ch : chunks) {
      out.probe_rows.insert(out.probe_rows.end(), ch.probe_rows.begin(),
                            ch.probe_rows.end());
      out.build_rows.insert(out.build_rows.end(), ch.build_rows.begin(),
                            ch.build_rows.end());
    }
    return out;
  }

  VecRel join(const JoinOp& op, const VecRel& left, const VecRel& right) {
    const JoinSplit split =
        split_join_predicate(op, left.schema, right.schema);
    std::vector<std::uint32_t> lrows, rrows;

    if (!split.equi.empty()) {
      // Build on the smaller side, probe with the larger.
      const bool build_right = right.active_rows() <= left.active_rows();
      const VecRel& build = build_right ? right : left;
      const VecRel& probe = build_right ? left : right;
      std::vector<std::size_t> build_keys, probe_keys;  // physical cols
      for (const auto& [li, ri] : split.equi) {
        build_keys.push_back(build_right ? right.cols[ri] : left.cols[li]);
        probe_keys.push_back(build_right ? left.cols[li] : right.cols[ri]);
      }

      const std::size_t nb = build.active_rows();
      const std::size_t np = probe.active_rows();
      JoinPairs pairs;
      if (fused_ && fused_join_keys_ok(*build.data, build_keys, *probe.data,
                                       probe_keys)) {
        // Packed-key kernel path: emits (probe, build) pairs in exactly
        // the interpreted engine's order (insertion-ordered per-key
        // chains, probe in morsel order).
        pairs = run_fused_join(build, build_keys, probe, probe_keys, threads_);
      } else {
        if (fused_ && counters_enabled()) {
          MetricsRegistry::global().counter("exec/kernel/fallbacks").add(1);
        }
        pairs = hash_join_pairs(build, build_keys, probe, probe_keys);
      }
      lrows = build_right ? std::move(pairs.probe_rows)
                          : std::move(pairs.build_rows);
      rrows = build_right ? std::move(pairs.build_rows)
                          : std::move(pairs.probe_rows);
      if (stats_ != nullptr) {
        stats_->blocks_read += left.blocks() + right.blocks();
        stats_->rows_scanned +=
            static_cast<double>(left.active_rows() + right.active_rows());
        stats_->batches +=
            static_cast<double>(morsel_count(nb) + morsel_count(np));
      }
      VecRel out = gather_join(op, left, right, lrows, rrows);
      if (!split.residual.empty()) {
        std::vector<ExprPtr> preds = split.residual;
        const CompiledExpr residual(conj(std::move(preds)), out.schema);
        out.sel = filter_rows(out, residual);
        out.identity = false;
      }
      return out;
    }

    // Nested loop (cross product or theta join): the rare fallback, kept
    // row-at-a-time — it is O(n*m) regardless of layout.
    const Schema joint = op.output_schema();
    const CompiledExpr pred(op.predicate(), joint);
    const std::size_t nl = left.schema.size();
    for (std::size_t i = 0; i < left.active_rows(); ++i) {
      const std::uint32_t lr = left.physical(i);
      Tuple joined(joint.size());
      for (std::size_t c = 0; c < nl; ++c) {
        joined[c] = left.data->value_at(lr, left.cols[c]);
      }
      for (std::size_t j = 0; j < right.active_rows(); ++j) {
        const std::uint32_t rr = right.physical(j);
        for (std::size_t c = 0; c < right.schema.size(); ++c) {
          joined[nl + c] = right.data->value_at(rr, right.cols[c]);
        }
        if (pred.matches(joined)) {
          lrows.push_back(lr);
          rrows.push_back(rr);
        }
      }
    }
    if (stats_ != nullptr) {
      // Outer = the smaller input, matching CostModel::join_op_cost.
      const double outer = std::min(left.blocks(), right.blocks());
      const double inner = std::max(left.blocks(), right.blocks());
      stats_->blocks_read += outer + outer * inner;
      stats_->rows_scanned +=
          static_cast<double>(left.active_rows() + right.active_rows());
      stats_->batches += 1;
    }
    return gather_join(op, left, right, lrows, rrows);
  }

  VecRel aggregate(const AggregateOp& op, const VecRel& in) {
    std::vector<std::size_t> group_cols;
    for (const std::string& g : op.group_by()) {
      group_cols.push_back(in.cols[in.schema.index_of(g)]);
    }
    std::vector<std::size_t> agg_cols;  // SIZE_MAX for COUNT(*)
    for (const AggSpec& a : op.aggregates()) {
      agg_cols.push_back(a.column.empty()
                             ? SIZE_MAX
                             : in.cols[in.schema.index_of(a.column)]);
    }

    const std::size_t n = in.active_rows();
    const std::size_t morsels = morsel_count(n);
    const ColumnTable& data = *in.data;

    if (fused_ && fused_aggregate_ok(op, data, group_cols, agg_cols)) {
      VecRel r = run_fused_aggregate(op, in, group_cols, agg_cols, threads_);
      if (stats_ != nullptr) {
        stats_->rows_scanned += static_cast<double>(n);
        stats_->batches += static_cast<double>(morsels);
      }
      return r;
    }
    if (fused_ && counters_enabled()) {
      MetricsRegistry::global().counter("exec/kernel/fallbacks").add(1);
    }

    const auto pack_key = [&](std::string& key, std::uint32_t r) {
      key.clear();
      for (const std::size_t c : group_cols) {
        switch (data.kind(c)) {
          case ColumnKind::kInt64Col:
            append_packed_f64(key, static_cast<double>(data.i64(c)[r]));
            break;
          case ColumnKind::kDoubleCol:
            append_packed_f64(key, data.f64(c)[r]);
            break;
          case ColumnKind::kStringCol:
            append_packed_str(key, data.str(c)[r]);
            break;
          case ColumnKind::kBoolCol:
            append_packed_bool(key, data.b8(c)[r] != 0);
            break;
        }
      }
    };

    std::vector<std::string> keys;
    std::vector<std::uint32_t> first_row;
    std::vector<std::vector<Accumulator>> accs;
    std::unordered_map<std::string, std::size_t> index;

    if (threads_ <= 1 || morsels <= 1) {
      // Single pass straight into the global table. Output order is the
      // global first-seen order — exactly what the morsel-order merge
      // below produces, so both paths are interchangeable.
      std::string key;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t r = in.physical(i);
        pack_key(key, r);
        auto [it, inserted] = index.try_emplace(key, keys.size());
        if (inserted) {
          keys.push_back(key);
          first_row.push_back(r);
          accs.emplace_back(op.aggregates().size());
        }
        std::vector<Accumulator>& ga = accs[it->second];
        for (std::size_t a = 0; a < agg_cols.size(); ++a) {
          ga[a].feed(agg_cols[a] == SIZE_MAX ? Value::int64(1)
                                             : data.value_at(r, agg_cols[a]));
        }
      }
    } else {
      // Per-morsel hash aggregation over packed keys, first-seen order.
      struct Partial {
        std::vector<std::string> keys;
        std::vector<std::uint32_t> first_row;  // physical row of first hit
        std::vector<std::vector<Accumulator>> accs;
        std::unordered_map<std::string, std::size_t> index;
      };
      std::vector<Partial> partials(morsels);
      parallel_shards(
          morsels, threads_, [&](std::size_t, std::size_t mb, std::size_t me) {
            WorkerProbe wp(vec_worker_track(), "aggregate-partial");
            std::string key;
            for (std::size_t m = mb; m < me; ++m) {
              const std::size_t lo = m * kMorselRows;
              const std::size_t hi = std::min(n, lo + kMorselRows);
              Partial& p = partials[m];
              for (std::size_t i = lo; i < hi; ++i) {
                const std::uint32_t r = in.physical(i);
                pack_key(key, r);
                auto [it, inserted] = p.index.try_emplace(key, p.keys.size());
                if (inserted) {
                  p.keys.push_back(key);
                  p.first_row.push_back(r);
                  p.accs.emplace_back(op.aggregates().size());
                }
                std::vector<Accumulator>& pa = p.accs[it->second];
                for (std::size_t a = 0; a < agg_cols.size(); ++a) {
                  pa[a].feed(agg_cols[a] == SIZE_MAX
                                 ? Value::int64(1)
                                 : data.value_at(r, agg_cols[a]));
                }
              }
            }
          });

      // Merge partials in morsel order: global first-seen order equals
      // the serial order, independent of the thread count.
      for (Partial& p : partials) {
        for (std::size_t g = 0; g < p.keys.size(); ++g) {
          auto [it, inserted] = index.try_emplace(p.keys[g], keys.size());
          if (inserted) {
            keys.push_back(std::move(p.keys[g]));
            first_row.push_back(p.first_row[g]);
            accs.push_back(std::move(p.accs[g]));
          } else {
            std::vector<Accumulator>& into = accs[it->second];
            for (std::size_t a = 0; a < into.size(); ++a) {
              into[a].merge(p.accs[g][a]);
            }
          }
        }
      }
    }
    // SQL semantics: a global aggregate over an empty input yields one
    // row.
    const bool empty_global = keys.empty() && op.group_by().empty();

    const Schema& os = op.output_schema();
    auto out = std::make_shared<ColumnTable>(os, in.blocking_factor);
    const std::size_t ngroups = empty_global ? 1 : keys.size();
    const std::vector<Accumulator> empty_accs(op.aggregates().size());
    for (std::size_t g = 0; g < ngroups; ++g) {
      for (std::size_t k = 0; k < group_cols.size(); ++k) {
        out->append_value(k, data.value_at(first_row[g], group_cols[k]));
      }
      const std::vector<Accumulator>& ga = empty_global ? empty_accs : accs[g];
      for (std::size_t a = 0; a < ga.size(); ++a) {
        out->append_value(group_cols.size() + a,
                          ga[a].result(op.aggregates()[a].fn,
                                       os.at(group_cols.size() + a).type));
      }
    }
    out->set_row_count(ngroups);

    if (stats_ != nullptr) {
      stats_->rows_scanned += static_cast<double>(n);
      stats_->batches += static_cast<double>(morsels);
    }
    VecRel r;
    r.data = std::move(out);
    r.identity = true;
    r.cols.resize(os.size());
    std::iota(r.cols.begin(), r.cols.end(), std::size_t{0});
    r.schema = os;
    r.blocking_factor = in.blocking_factor;
    return r;
  }

  /// The only tuple materialization in the engine: the final sink.
  Table sink(const VecRel& r) {
    Table out(r.schema, r.blocking_factor);
    const std::size_t n = r.active_rows();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t pr = r.physical(i);
      Tuple t;
      t.reserve(r.cols.size());
      for (const std::size_t c : r.cols) {
        t.push_back(r.data->value_at(pr, c));
      }
      out.append(std::move(t));
    }
    return out;
  }

  const Database* db_;
  ExecStats* stats_;
  std::size_t threads_;
  ColumnTableCache* cache_;
  bool fused_ = false;
  std::map<const LogicalOp*, std::size_t> uses_;  // fused_ only
  std::map<const LogicalOp*, VecRel> memo_;
  /// Per-operator work tallies (indexed by OpKind), flushed once at the
  /// end of run() under the same names as the row engine.
  double op_blocks_[kExecOpKinds] = {};
  double op_rows_[kExecOpKinds] = {};
};

}  // namespace

Table run_vectorized(const Database& db, const PlanPtr& plan, ExecStats* stats,
                     std::size_t threads, ColumnTableCache& cache,
                     bool fused) {
  VectorizedEngine engine(db, stats, threads, cache, fused);
  return engine.run(plan);
}

}  // namespace mvd
