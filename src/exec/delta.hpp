// Delta-propagation operators: executing the incremental maintenance
// algebra that src/maintenance/incremental.hpp only estimates.
//
// Given the signed deltas of named leaves (base relations and stored
// views), a DeltaPropagator computes the signed delta of a plan's result:
//
//   Δ(σ_p R)   = σ_p(ΔR)                       — filter both bags
//   Δ(π_c R)   = π_c(ΔR)                       — bag projection
//   Δ(R ⋈ S)  = ΔR ⋈ S' + R' ⋈ ΔS − ΔR ⋈ ΔS  — primed sides are the
//               post-update states, read through the regular engines
//
// Join terms reuse the hash-join internals of exec_internal.hpp, always
// building on the (small) delta side and probing with the full side; the
// full side itself is produced by Executor::run under the configured
// ExecMode, so frontier reads and interior recomputation go through the
// row or vectorized engine exactly as a recompute refresh would.
// Aggregates are not propagated here — the maintenance driver applies
// grouped deltas to stored aggregate views directly (self-maintainable
// aggregates) or falls back to recompute; propagate() reports them as
// non-propagatable via std::nullopt.
#pragma once

#include <map>
#include <optional>

#include "src/exec/executor.hpp"
#include "src/storage/delta_table.hpp"

namespace mvd {

class DeltaPropagator {
 public:
  /// `deltas` names the changed leaves; both referees must outlive the
  /// propagator. Construct a fresh propagator after mutating `db` — full
  /// sides are memoized per plan node (and per stored table in vectorized
  /// mode).
  DeltaPropagator(const Database& db, const DeltaSet& deltas,
                  ExecMode mode = default_exec_mode(),
                  std::size_t threads = default_exec_threads());

  /// Signed delta of `plan`'s result, or std::nullopt when the plan
  /// contains an operator the delta algebra does not cover (aggregation).
  /// Charges blocks_read/rows_scanned in the engines' accounting: delta
  /// scans and filters charge delta blocks, each join term charges the
  /// delta build plus the full probe side, full-side production is
  /// charged by the inner Executor run.
  std::optional<DeltaTable> propagate(const PlanPtr& plan,
                                      ExecStats* stats = nullptr);

  /// True when some scan leaf of `plan` has a non-empty delta — the
  /// cheap "is this view affected at all" test the driver uses to skip
  /// untouched views without executing anything.
  bool touches(const PlanPtr& plan) const;

  /// The post-update state of `plan`'s result (memoized per plan node;
  /// used by the driver's recompute fallback so the work is not redone).
  const Table& full(const PlanPtr& plan, ExecStats* stats = nullptr);

 private:
  std::optional<DeltaTable> run(const PlanPtr& plan, ExecStats* stats);

  DeltaTable delta_scan(const ScanOp& op, ExecStats* stats) const;
  DeltaTable delta_select(const SelectOp& op, const DeltaTable& in,
                          ExecStats* stats) const;
  DeltaTable delta_project(const ProjectOp& op, const DeltaTable& in) const;
  /// nullopt for joins without an equi conjunct (theta/cross) — the hash
  /// delta algebra does not cover them, so callers fall back to recompute.
  std::optional<DeltaTable> delta_join(const JoinOp& op,
                                       const std::optional<DeltaTable>& l,
                                       const std::optional<DeltaTable>& r,
                                       ExecStats* stats);

  const DeltaSet* deltas_;
  Executor exec_;
  std::map<const LogicalOp*, DeltaTable> delta_memo_;
  std::map<const LogicalOp*, Table> full_memo_;
};

}  // namespace mvd
