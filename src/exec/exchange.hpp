// Exchange instrumentation for the sharded execution layer.
//
// The three exchange operators move rows between the coordinator and the
// hash-partitioned buckets (src/storage/sharded_table.hpp):
//
//   shuffle    hash-route rows to their owning bucket (fact loads, fact
//              delta routing during shard-aware refresh)
//   broadcast  replicate rows to every shard (dimension tables and their
//              deltas, global-view deltas consumed by partitioned views)
//   gather     collect per-bucket results / partial aggregates onto the
//              coordinator in bucket order (the deterministic final merge)
//
// Everything is in-process, so an "exchange" is pointer traffic — but the
// counts are the measured analogue of the §4.1 cost model's cross-site
// block transfers, and the distributed_exec_validation test pins the
// DistributedMvppEvaluator's predictions against them. Counters accumulate
// into a caller-owned ExchangeCounters (always, so ExecStats works with
// tracing off) and mirror into the MetricsRegistry under exec/exchange/*
// when counters are enabled.
#pragma once

#include <cstddef>

namespace mvd {

class Table;
class DeltaTable;

/// Running totals for one sharded database / one sharded run.
struct ExchangeCounters {
  double shuffle_rows = 0;
  double shuffle_blocks = 0;
  double broadcast_rows = 0;    // rows x destination shard count
  double broadcast_blocks = 0;  // blocks x destination shard count
  double broadcast_bytes = 0;   // estimated payload bytes x shard count
  double gather_rows = 0;
  double gather_blocks = 0;

  void add(const ExchangeCounters& other);
  double total_rows() const {
    return shuffle_rows + broadcast_rows + gather_rows;
  }
  double total_blocks() const {
    return shuffle_blocks + broadcast_blocks + gather_blocks;
  }
};

/// Estimated wire size of a table's rows (fixed 8 bytes per numeric /
/// bool / date value, string length for strings). Used for the
/// broadcast-bytes counter; intentionally simple and deterministic.
double approx_table_bytes(const Table& table);
double approx_delta_bytes(const DeltaTable& delta);

/// Record one exchange into `log` and, when counters_enabled(), into the
/// global registry (exec/exchange/shuffle_rows, ... — see exchange.cpp).
void record_shuffle(ExchangeCounters& log, double rows, double blocks);
void record_broadcast(ExchangeCounters& log, double rows, double blocks,
                      double bytes, std::size_t shards);
void record_gather(ExchangeCounters& log, double rows, double blocks);

}  // namespace mvd
