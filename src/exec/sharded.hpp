// Sharded execution layer: runs logical plans against a ShardedDatabase
// (src/storage/sharded_table.hpp) as per-bucket partials plus a
// deterministic coordinator merge.
//
// Plan classification. A plan may reference at most one hash-partitioned
// relation (along one path — fact self-joins and joins of two partitioned
// relations would need cross-shard repartitioning, which this in-process
// layer deliberately does not implement; such plans throw ExecError).
// Joins against replicated dimensions and coordinator-resident (global)
// views are bucket-local, because every bucket database aliases those
// tables. Three shapes follow:
//
//   no partitioned leaf      run unchanged on the coordinator
//   non-aggregate spine      run the full plan per bucket, concatenate
//                            the per-bucket results in bucket order
//                            (gather exchange)
//   aggregate on the spine   run the lowest spine aggregate's child per
//                            bucket, fold each bucket's rows into packed-
//                            key Accumulator partials (exactly the row
//                            engine's hash aggregation), merge partials
//                            on the coordinator in bucket order
//                            (partial -> final aggregation), then run the
//                            plan's remainder — the ancestors above the
//                            aggregate — over the merged result
//
// Determinism contract. The virtual bucket (64 of them, shard-count
// independent) is the unit of execution and merging, every merge walks
// buckets in ascending order, and morsel parallelism inside each bucket
// already guarantees thread-count invariance — so sharded results are
// bit-identical at any (shards x threads) configuration. Versus
// *unsharded* execution the result is the same bag; row order (and
// first-seen group order) follows bucket order instead of source order.
//
// Shard routing. A point query whose spine carries an equality conjunct
// `partition_key == literal` in the select chain directly above the
// partitioned leaf executes only on the key's owning shard (its whole
// bucket range — routing is at site granularity, matching the §4.1
// per-site cost model). Skipped shards hold no matching rows, so routed
// results stay bit-identical across shard counts; with more shards each
// shard owns fewer buckets, which is where sharded point-query throughput
// comes from on a single core.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/algebra/logical_plan.hpp"
#include "src/exec/executor.hpp"
#include "src/storage/sharded_table.hpp"

namespace mvd {

/// How a plan decomposes over a ShardedDatabase (see file comment).
struct ShardPlanAnalysis {
  /// The partitioned leaf scan, nullptr when the plan is coordinator-only.
  const ScanOp* leaf = nullptr;
  /// Number of root->partitioned-scan paths (DAG-aware); >1 is not
  /// executable by this layer.
  std::size_t refs = 0;
  /// Lowest aggregate on the leaf->root spine, nullptr when none.
  const AggregateOp* spine_aggregate = nullptr;
  /// Owning bucket of a `key == literal` routed point query.
  std::optional<std::size_t> route_bucket;
};

ShardPlanAnalysis analyze_shard_plan(const PlanPtr& plan,
                                     const ShardedDatabase& db);

/// Copy of `plan` with the subtree rooted at `target` replaced by `repl`
/// (shared structure above unaffected subtrees is rebuilt, predicates and
/// projections re-bound). Returns `plan` unchanged when `target` does not
/// occur. Used to split a plan at its spine aggregate.
PlanPtr replace_subtree(const PlanPtr& plan, const LogicalOp* target,
                        const PlanPtr& repl);

/// Executes plans against a ShardedDatabase. Holds one persistent inner
/// Executor per bucket (so columnar conversions are cached across runs,
/// as Executor does for a Database) plus one for the coordinator; they
/// are rebuilt whenever the database's generation stamp moves. Not safe
/// for concurrent run() calls on one instance — the inner executors are,
/// by design, reused across calls.
class ShardedExecutor {
 public:
  explicit ShardedExecutor(ShardedDatabase& db,
                           ExecMode mode = default_exec_mode(),
                           std::size_t threads = default_exec_threads());

  ExecMode mode() const { return mode_; }
  std::size_t threads() const { return threads_; }
  ShardedDatabase& database() const { return *db_; }

  /// Execute `plan` to one coordinator-resident result. Shards execute
  /// in parallel (outer parallelism over shards; morsel parallelism
  /// inside each bucket unchanged); merges happen on the calling thread
  /// in bucket order. With `stats`, totals cover every shard plus
  /// coordinator work, `stats->per_shard[s]` holds shard s's own
  /// counters, and exchange traffic lands in rows/blocks_exchanged.
  Table run(const PlanPtr& plan, ExecStats* stats = nullptr) const;

  /// Execute a non-aggregate-spine plan to per-bucket results (one Table
  /// per bucket, no gather) — how partitioned views are deployed. Throws
  /// when the plan has no partitioned leaf or an aggregate on the spine.
  std::vector<Table> run_partitioned(const PlanPtr& plan,
                                     ExecStats* stats = nullptr) const;

 private:
  void refresh_executors() const;
  Table run_spine_aggregate(const PlanPtr& plan, const ShardPlanAnalysis& a,
                            ExecStats* stats) const;
  std::pair<std::size_t, std::size_t> shard_span(
      const ShardPlanAnalysis& a) const;
  void merge_shard_stats(ExecStats* stats,
                         std::vector<ExecStats> shard_stats) const;

  ShardedDatabase* db_;
  ExecMode mode_;
  std::size_t threads_;
  mutable std::uint64_t cached_generation_ = ~std::uint64_t{0};
  mutable std::vector<std::unique_ptr<Executor>> bucket_exec_;
  mutable std::unique_ptr<Executor> coord_exec_;
};

}  // namespace mvd
