#include "src/exec/executor.hpp"

#include <algorithm>
#include <unordered_map>

#include "src/algebra/eval.hpp"
#include "src/common/assert.hpp"
#include "src/common/error.hpp"

namespace mvd {

Table Executor::run(const PlanPtr& plan, ExecStats* stats) const {
  MVD_ASSERT(plan != nullptr);
  std::map<const LogicalOp*, TableRef> memo;
  return *run_node(plan, stats, memo);
}

Executor::TableRef Executor::run_node(
    const PlanPtr& plan, ExecStats* stats,
    std::map<const LogicalOp*, TableRef>& memo) const {
  if (auto it = memo.find(plan.get()); it != memo.end()) return it->second;
  TableRef result;
  switch (plan->kind()) {
    case OpKind::kScan:
      result = exec_scan(static_cast<const ScanOp&>(*plan), stats);
      break;
    case OpKind::kSelect: {
      const auto in = run_node(plan->children()[0], stats, memo);
      result = exec_select(static_cast<const SelectOp&>(*plan), in, stats);
      break;
    }
    case OpKind::kProject: {
      const auto in = run_node(plan->children()[0], stats, memo);
      result = exec_project(static_cast<const ProjectOp&>(*plan), in);
      break;
    }
    case OpKind::kJoin: {
      const auto l = run_node(plan->children()[0], stats, memo);
      const auto r = run_node(plan->children()[1], stats, memo);
      result = exec_join(static_cast<const JoinOp&>(*plan), l, r, stats);
      break;
    }
    case OpKind::kAggregate: {
      const auto in = run_node(plan->children()[0], stats, memo);
      result = exec_aggregate(static_cast<const AggregateOp&>(*plan), in);
      break;
    }
  }
  MVD_ASSERT(result != nullptr);
  if (stats != nullptr) {
    stats->rows_out[plan->label()] = static_cast<double>(result->row_count());
  }
  memo.emplace(plan.get(), result);
  return result;
}

Executor::TableRef Executor::exec_scan(const ScanOp& op,
                                       ExecStats* stats) const {
  const Table& src = db_->table(op.relation());
  if (stats != nullptr) stats->blocks_read += src.blocks();
  // Rebuild under the plan's (qualified) schema so downstream binding by
  // qualified name works even when the stored table has bare names.
  if (src.schema().size() != op.output_schema().size()) {
    throw ExecError("stored table '" + op.relation() +
                    "' does not match the scan schema");
  }
  auto out = std::make_shared<Table>(op.output_schema(), src.blocking_factor());
  for (const Tuple& t : src.rows()) out->append(t);
  return out;
}

Executor::TableRef Executor::exec_select(const SelectOp& op,
                                         const TableRef& in,
                                         ExecStats* stats) const {
  (void)stats;
  const CompiledExpr pred(op.predicate(), in->schema());
  auto out = std::make_shared<Table>(in->schema(), in->blocking_factor());
  for (const Tuple& t : in->rows()) {
    if (pred.matches(t)) out->append(t);
  }
  return out;
}

Executor::TableRef Executor::exec_project(const ProjectOp& op,
                                          const TableRef& in) const {
  std::vector<std::size_t> indices;
  indices.reserve(op.columns().size());
  for (const std::string& c : op.columns()) {
    indices.push_back(in->schema().index_of(c));
  }
  auto out = std::make_shared<Table>(op.output_schema(), in->blocking_factor());
  for (const Tuple& t : in->rows()) {
    Tuple projected;
    projected.reserve(indices.size());
    for (std::size_t i : indices) projected.push_back(t[i]);
    out->append(std::move(projected));
  }
  return out;
}

namespace {

// Split the join predicate into hashable equi conjuncts (left column ×
// right column) and a residual predicate evaluated on joined tuples.
struct JoinSplit {
  std::vector<std::pair<std::size_t, std::size_t>> equi;  // left idx, right idx
  std::vector<ExprPtr> residual;
};

JoinSplit split_join_predicate(const JoinOp& op, const Schema& left,
                               const Schema& right) {
  JoinSplit split;
  for (const ExprPtr& c : conjuncts_of(op.predicate())) {
    if (auto pair = as_column_equality(c); pair.has_value()) {
      const auto li = left.find(pair->left);
      const auto ri = right.find(pair->right);
      if (li.has_value() && ri.has_value()) {
        split.equi.emplace_back(*li, *ri);
        continue;
      }
      const auto li2 = left.find(pair->right);
      const auto ri2 = right.find(pair->left);
      if (li2.has_value() && ri2.has_value()) {
        split.equi.emplace_back(*li2, *ri2);
        continue;
      }
    }
    split.residual.push_back(c);
  }
  return split;
}

std::size_t hash_key(const Tuple& t,
                     const std::vector<std::size_t>& indices) {
  std::size_t seed = 0x51ed5eedULL;
  for (std::size_t i : indices) {
    seed ^= t[i].hash() + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  }
  return seed;
}

bool keys_equal(const Tuple& a, const std::vector<std::size_t>& ai,
                const Tuple& b, const std::vector<std::size_t>& bi) {
  for (std::size_t k = 0; k < ai.size(); ++k) {
    if (!(a[ai[k]] == b[bi[k]])) return false;
  }
  return true;
}

}  // namespace

Executor::TableRef Executor::exec_join(const JoinOp& op, const TableRef& left,
                                       const TableRef& right,
                                       ExecStats* stats) const {
  const Schema& ls = left->schema();
  const Schema& rs = right->schema();
  const JoinSplit split = split_join_predicate(op, ls, rs);

  auto out = std::make_shared<Table>(op.output_schema(),
                                     left->blocking_factor());
  const Schema joint = Schema::concat(ls, rs);
  std::unique_ptr<CompiledExpr> residual;
  if (!split.residual.empty()) {
    std::vector<ExprPtr> preds = split.residual;
    residual = std::make_unique<CompiledExpr>(conj(std::move(preds)), joint);
  }

  auto emit = [&](const Tuple& l, const Tuple& r) {
    Tuple joined = l;
    joined.insert(joined.end(), r.begin(), r.end());
    if (residual == nullptr || residual->matches(joined)) {
      out->append(std::move(joined));
    }
  };

  if (!split.equi.empty()) {
    // Build on the smaller side, probe with the larger.
    const bool build_right = right->row_count() <= left->row_count();
    const Table& build = build_right ? *right : *left;
    const Table& probe = build_right ? *left : *right;
    std::vector<std::size_t> build_idx, probe_idx;
    for (const auto& [li, ri] : split.equi) {
      build_idx.push_back(build_right ? ri : li);
      probe_idx.push_back(build_right ? li : ri);
    }
    std::unordered_multimap<std::size_t, std::size_t> table;
    table.reserve(build.row_count());
    for (std::size_t i = 0; i < build.row_count(); ++i) {
      table.emplace(hash_key(build.row(i), build_idx), i);
    }
    for (std::size_t i = 0; i < probe.row_count(); ++i) {
      const Tuple& p = probe.row(i);
      auto [lo, hi] = table.equal_range(hash_key(p, probe_idx));
      for (auto it = lo; it != hi; ++it) {
        const Tuple& b = build.row(it->second);
        if (!keys_equal(p, probe_idx, b, build_idx)) continue;
        if (build_right) {
          emit(p, b);
        } else {
          emit(b, p);
        }
      }
    }
    if (stats != nullptr) stats->blocks_read += left->blocks() + right->blocks();
  } else {
    // Nested loop (cross product or theta join).
    for (const Tuple& l : left->rows()) {
      for (const Tuple& r : right->rows()) emit(l, r);
    }
    if (stats != nullptr) {
      stats->blocks_read +=
          left->blocks() + left->blocks() * right->blocks();
    }
  }
  return out;
}

namespace {

// Running state of one aggregate within one group.
struct Accumulator {
  double count = 0;
  double sum = 0;
  std::optional<Value> min;
  std::optional<Value> max;

  void feed(const Value& v) {
    count += 1;
    if (is_numeric(v.type())) sum += v.as_double();
    if (!min.has_value() || v.compare(*min) < 0) min = v;
    if (!max.has_value() || v.compare(*max) > 0) max = v;
  }

  Value result(AggFn fn, ValueType output_type) const {
    switch (fn) {
      case AggFn::kCount:
        return Value::int64(static_cast<std::int64_t>(count));
      case AggFn::kSum:
        return Value::real(sum);
      case AggFn::kAvg:
        return Value::real(count > 0 ? sum / count : 0.0);
      case AggFn::kMin:
      case AggFn::kMax: {
        const std::optional<Value>& v = fn == AggFn::kMin ? min : max;
        if (v.has_value()) return *v;
        // Empty global group: a typed zero placeholder (SQL would say
        // NULL; the engine has no nulls, documented limitation).
        return output_type == ValueType::kString ? Value::string("")
                                                 : Value::int64(0);
      }
    }
    MVD_ASSERT(false);
    return Value::int64(0);
  }
};

}  // namespace

Executor::TableRef Executor::exec_aggregate(const AggregateOp& op,
                                            const TableRef& in) const {
  const Schema& is = in->schema();
  std::vector<std::size_t> group_idx;
  for (const std::string& g : op.group_by()) {
    group_idx.push_back(is.index_of(g));
  }
  std::vector<std::size_t> agg_idx;  // SIZE_MAX for COUNT(*)
  for (const AggSpec& a : op.aggregates()) {
    agg_idx.push_back(a.column.empty() ? SIZE_MAX : is.index_of(a.column));
  }

  // Group rows by key; keep first-seen order for determinism.
  std::map<std::string, std::pair<Tuple, std::vector<Accumulator>>> groups;
  std::vector<std::string> order;
  for (const Tuple& t : in->rows()) {
    std::string key;
    Tuple key_values;
    for (std::size_t gi : group_idx) {
      key += t[gi].to_string();
      key += '\x1f';
      key_values.push_back(t[gi]);
    }
    auto [it, inserted] = groups.try_emplace(
        key, std::move(key_values),
        std::vector<Accumulator>(op.aggregates().size()));
    if (inserted) order.push_back(it->first);
    for (std::size_t a = 0; a < agg_idx.size(); ++a) {
      it->second.second[a].feed(agg_idx[a] == SIZE_MAX ? Value::int64(1)
                                                       : t[agg_idx[a]]);
    }
  }
  // SQL semantics: a global aggregate over an empty input yields one row.
  if (groups.empty() && op.group_by().empty()) {
    groups.try_emplace(std::string{}, Tuple{},
                       std::vector<Accumulator>(op.aggregates().size()));
    order.push_back(std::string{});
  }

  auto out = std::make_shared<Table>(op.output_schema(),
                                     in->blocking_factor());
  const Schema& os = op.output_schema();
  for (const std::string& key : order) {
    const auto& [key_values, accs] = groups.at(key);
    Tuple row = key_values;
    for (std::size_t a = 0; a < accs.size(); ++a) {
      row.push_back(accs[a].result(
          op.aggregates()[a].fn,
          os.at(group_idx.size() + a).type));
    }
    out->append(std::move(row));
  }
  return out;
}

bool same_bag(const Table& a, const Table& b) {
  if (a.schema().size() != b.schema().size()) return false;
  if (a.row_count() != b.row_count()) return false;
  auto key = [](const Tuple& t) {
    std::string k;
    for (const Value& v : t) {
      k += v.to_string();
      k += '\x1f';
    }
    return k;
  };
  std::map<std::string, int> counts;
  for (const Tuple& t : a.rows()) counts[key(t)]++;
  for (const Tuple& t : b.rows()) {
    if (--counts[key(t)] < 0) return false;
  }
  return true;
}

}  // namespace mvd
