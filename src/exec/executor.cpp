#include "src/exec/executor.hpp"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "src/algebra/eval.hpp"
#include "src/check/check.hpp"
#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"
#include "src/exec/exec_internal.hpp"
#include "src/exec/vectorized.hpp"
#include "src/obs/publish.hpp"
#include "src/obs/trace.hpp"

namespace mvd {

/// Per-run row-engine state. Per-operator block/row tallies accumulate
/// locally (no registry traffic inside the plan walk) and flush once at
/// the end of run().
struct Executor::RunContext {
  std::map<const LogicalOp*, TableRef> memo;
  double op_blocks[kExecOpKinds] = {};
  double op_rows[kExecOpKinds] = {};
};

void publish_op_tallies(const char* engine, const double* blocks,
                        const double* rows) {
  MetricsRegistry& reg = MetricsRegistry::global();
  for (std::size_t k = 0; k < kExecOpKinds; ++k) {
    reg.counter(str_cat("exec/op/", kExecOpNames[k], "/blocks_read"))
        .add(blocks[k]);
    reg.counter(str_cat("exec/op/", kExecOpNames[k], "/rows_scanned"))
        .add(rows[k]);
    reg.counter(str_cat("exec/", engine, "/op/", kExecOpNames[k],
                        "/blocks_read"))
        .add(blocks[k]);
    reg.counter(str_cat("exec/", engine, "/op/", kExecOpNames[k],
                        "/rows_scanned"))
        .add(rows[k]);
  }
}

const char* exec_mode_name(ExecMode mode) {
  switch (mode) {
    case ExecMode::kFused:
      return "fused";
    case ExecMode::kVectorized:
      return "vec";
    case ExecMode::kRow:
      break;
  }
  return "row";
}

ExecMode default_exec_mode() {
  ExecMode mode = ExecMode::kRow;
  if (const char* env = std::getenv("MVD_EXEC_MODE")) {
    const std::string m(env);
    if (m == "vectorized" || m == "vec") mode = ExecMode::kVectorized;
    if (m == "fused") mode = ExecMode::kFused;
  }
  // MVD_EXEC_FUSED toggles the kernel layer on top of whatever engine
  // MVD_EXEC_MODE picked: on upgrades vectorized (or row) to fused, off
  // forces fused back to the interpreted vectorized path.
  if (const char* env = std::getenv("MVD_EXEC_FUSED")) {
    const std::string f(env);
    if (f == "1" || f == "true" || f == "on") {
      mode = ExecMode::kFused;
    } else if ((f == "0" || f == "false" || f == "off") &&
               mode == ExecMode::kFused) {
      mode = ExecMode::kVectorized;
    }
  }
  return mode;
}

std::size_t default_exec_threads() {
  const char* env = std::getenv("MVD_EXEC_THREADS");
  if (env == nullptr) return 1;
  char* end = nullptr;
  const unsigned long n = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return 1;
  return static_cast<std::size_t>(n);
}

std::size_t default_exec_shards() {
  const char* env = std::getenv("MVD_EXEC_SHARDS");
  if (env == nullptr) return 0;
  char* end = nullptr;
  const unsigned long n = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<std::size_t>(n);
}

Executor::Executor(const Database& db, ExecMode mode, std::size_t threads)
    : db_(&db),
      mode_(mode),
      threads_(threads),
      column_cache_(mode != ExecMode::kRow
                        ? std::make_shared<ColumnTableCache>()
                        : nullptr) {}

Executor::Executor(std::shared_ptr<const Database> db, ExecMode mode,
                   std::size_t threads)
    : Executor(*db, mode, threads) {
  pinned_ = std::move(db);
}

Table Executor::run(const PlanPtr& plan, ExecStats* stats) const {
  MVD_ASSERT(plan != nullptr);
  // Static pre-flight (MVD_CHECK=off|warn|error): reject plans that would
  // die row-by-row before any engine touches data.
  check_stage_hook("exec", plan, db_);
  // With counters on, always account into an ExecStats — the registry
  // sees the same numbers whether or not the caller asked for a copy.
  const bool publish = counters_enabled();
  ExecStats local;
  ExecStats* s = stats;
  if (publish && s == nullptr) s = &local;

  // Callers may pass an accumulator that is already non-zero; the engines
  // only add, so the entry values subtract out to this run's deltas.
  const double blocks0 = s != nullptr ? s->blocks_read : 0;
  const double rows0 = s != nullptr ? s->rows_scanned : 0;
  const double batches0 = s != nullptr ? s->batches : 0;

  const char* engine = exec_mode_name(mode_);
  TraceSpan span("exec", mode_ == ExecMode::kFused        ? "fused-run"
                         : mode_ == ExecMode::kVectorized ? "vec-run"
                                                          : "row-run");
  Table out = [&] {
    if (mode_ != ExecMode::kRow) {
      return run_vectorized(*db_, plan, s, threads_, *column_cache_,
                            mode_ == ExecMode::kFused);
    }
    RunContext ctx;
    Table t = *run_node(plan, s, ctx);
    if (publish) publish_op_tallies(engine, ctx.op_blocks, ctx.op_rows);
    return t;
  }();
  if (span.active()) {
    span.arg("rows_out", static_cast<double>(out.row_count()));
    if (s != nullptr) {
      span.arg("blocks_read", s->blocks_read - blocks0);
      span.arg("rows_scanned", s->rows_scanned - rows0);
    }
  }
  if (publish && s != nullptr) {
    ExecStats run_stats;
    run_stats.blocks_read = s->blocks_read - blocks0;
    run_stats.rows_scanned = s->rows_scanned - rows0;
    run_stats.batches = s->batches - batches0;
    publish_exec_stats(run_stats, engine);
  }
  return out;
}

Executor::TableRef Executor::run_node(const PlanPtr& plan, ExecStats* stats,
                                      RunContext& ctx) const {
  if (auto it = ctx.memo.find(plan.get()); it != ctx.memo.end()) {
    return it->second;
  }
  // Children first (left to right, as before), so the operator's span and
  // per-operator tallies cover only its own work.
  std::vector<TableRef> in;
  in.reserve(plan->children().size());
  for (const PlanPtr& c : plan->children()) {
    in.push_back(run_node(c, stats, ctx));
  }

  const double blocks0 = stats != nullptr ? stats->blocks_read : 0;
  const double rows0 = stats != nullptr ? stats->rows_scanned : 0;
  TraceSpan span("exec.row", kExecOpNames[static_cast<std::size_t>(
                                 plan->kind())]);
  TableRef result;
  switch (plan->kind()) {
    case OpKind::kScan:
      result = exec_scan(static_cast<const ScanOp&>(*plan), stats);
      break;
    case OpKind::kSelect:
      result = exec_select(static_cast<const SelectOp&>(*plan), in[0], stats);
      break;
    case OpKind::kProject:
      result = exec_project(static_cast<const ProjectOp&>(*plan), in[0]);
      break;
    case OpKind::kJoin:
      result = exec_join(static_cast<const JoinOp&>(*plan), in[0], in[1],
                         stats);
      break;
    case OpKind::kAggregate:
      result = exec_aggregate(static_cast<const AggregateOp&>(*plan), in[0],
                              stats);
      break;
  }
  MVD_ASSERT(result != nullptr);
  if (stats != nullptr) {
    stats->rows_out[plan->label()] = static_cast<double>(result->row_count());
    const auto k = static_cast<std::size_t>(plan->kind());
    ctx.op_blocks[k] += stats->blocks_read - blocks0;
    ctx.op_rows[k] += stats->rows_scanned - rows0;
  }
  if (span.active()) {
    span.arg("label", plan->label());
    span.arg("rows_out", static_cast<double>(result->row_count()));
    if (stats != nullptr) {
      span.arg("blocks_read", stats->blocks_read - blocks0);
      span.arg("rows_scanned", stats->rows_scanned - rows0);
    }
  }
  ctx.memo.emplace(plan.get(), result);
  return result;
}

Executor::TableRef Executor::exec_scan(const ScanOp& op,
                                       ExecStats* stats) const {
  const Table& src = db_->table(op.relation());
  if (stats != nullptr) {
    stats->blocks_read += src.blocks();
    stats->rows_scanned += static_cast<double>(src.row_count());
    stats->batches += 1;
  }
  if (src.schema().size() != op.output_schema().size()) {
    throw ExecError("stored table '" + op.relation() +
                    "' does not match the scan schema");
  }
  // When the stored schema already matches the plan's, alias the stored
  // table instead of copying it (the database outlives the run). Stored
  // views read back through named scans hit this path every time.
  if (src.schema() == op.output_schema()) {
    return TableRef(TableRef{}, &src);
  }
  // Otherwise rebind under the plan's (qualified) schema so downstream
  // binding by qualified name works even when the stored table has bare
  // names — one bulk row copy, types validated per column.
  return std::make_shared<Table>(Table::rebind(op.output_schema(), src));
}

Executor::TableRef Executor::exec_select(const SelectOp& op,
                                         const TableRef& in,
                                         ExecStats* stats) const {
  if (stats != nullptr) {
    stats->blocks_read += in->blocks();
    stats->rows_scanned += static_cast<double>(in->row_count());
    stats->batches += 1;
  }
  const CompiledExpr pred(op.predicate(), in->schema());
  auto out = std::make_shared<Table>(in->schema(), in->blocking_factor());
  for (const Tuple& t : in->rows()) {
    if (pred.matches(t)) out->append(t);
  }
  return out;
}

Executor::TableRef Executor::exec_project(const ProjectOp& op,
                                          const TableRef& in) const {
  std::vector<std::size_t> indices;
  indices.reserve(op.columns().size());
  for (const std::string& c : op.columns()) {
    indices.push_back(in->schema().index_of(c));
  }
  auto out = std::make_shared<Table>(op.output_schema(), in->blocking_factor());
  for (const Tuple& t : in->rows()) {
    Tuple projected;
    projected.reserve(indices.size());
    for (std::size_t i : indices) projected.push_back(t[i]);
    out->append(std::move(projected));
  }
  return out;
}

Executor::TableRef Executor::exec_join(const JoinOp& op, const TableRef& left,
                                       const TableRef& right,
                                       ExecStats* stats) const {
  const Schema& ls = left->schema();
  const Schema& rs = right->schema();
  const JoinSplit split = split_join_predicate(op, ls, rs);

  auto out = std::make_shared<Table>(op.output_schema(),
                                     left->blocking_factor());
  const Schema joint = Schema::concat(ls, rs);
  std::unique_ptr<CompiledExpr> residual;
  if (!split.residual.empty()) {
    std::vector<ExprPtr> preds = split.residual;
    residual = std::make_unique<CompiledExpr>(conj(std::move(preds)), joint);
  }

  auto emit = [&](const Tuple& l, const Tuple& r) {
    Tuple joined = l;
    joined.insert(joined.end(), r.begin(), r.end());
    if (residual == nullptr || residual->matches(joined)) {
      out->append(std::move(joined));
    }
  };

  if (stats != nullptr) {
    stats->rows_scanned +=
        static_cast<double>(left->row_count() + right->row_count());
    stats->batches += 2;
  }
  if (!split.equi.empty()) {
    // Build on the smaller side, probe with the larger.
    const bool build_right = right->row_count() <= left->row_count();
    const Table& build = build_right ? *right : *left;
    const Table& probe = build_right ? *left : *right;
    std::vector<std::size_t> build_idx, probe_idx;
    for (const auto& [li, ri] : split.equi) {
      build_idx.push_back(build_right ? ri : li);
      probe_idx.push_back(build_right ? li : ri);
    }
    std::unordered_multimap<std::size_t, std::size_t> table;
    table.reserve(build.row_count());
    for (std::size_t i = 0; i < build.row_count(); ++i) {
      table.emplace(tuple_hash_key(build.row(i), build_idx), i);
    }
    for (std::size_t i = 0; i < probe.row_count(); ++i) {
      const Tuple& p = probe.row(i);
      auto [lo, hi] = table.equal_range(tuple_hash_key(p, probe_idx));
      for (auto it = lo; it != hi; ++it) {
        const Tuple& b = build.row(it->second);
        if (!tuple_keys_equal(p, probe_idx, b, build_idx)) continue;
        if (build_right) {
          emit(p, b);
        } else {
          emit(b, p);
        }
      }
    }
    if (stats != nullptr) stats->blocks_read += left->blocks() + right->blocks();
  } else {
    // Nested loop (cross product or theta join).
    for (const Tuple& l : left->rows()) {
      for (const Tuple& r : right->rows()) emit(l, r);
    }
    if (stats != nullptr) {
      // Outer = the smaller input, matching CostModel::join_op_cost (the
      // previous formula charged the left side as outer unconditionally,
      // double-counting whenever the left input was the larger one).
      const double outer = std::min(left->blocks(), right->blocks());
      const double inner = std::max(left->blocks(), right->blocks());
      stats->blocks_read += outer + outer * inner;
    }
  }
  return out;
}

Executor::TableRef Executor::exec_aggregate(const AggregateOp& op,
                                            const TableRef& in,
                                            ExecStats* stats) const {
  if (stats != nullptr) {
    stats->rows_scanned += static_cast<double>(in->row_count());
    stats->batches += 1;
  }
  const Schema& is = in->schema();
  std::vector<std::size_t> group_idx;
  for (const std::string& g : op.group_by()) {
    group_idx.push_back(is.index_of(g));
  }
  std::vector<std::size_t> agg_idx;  // SIZE_MAX for COUNT(*)
  for (const AggSpec& a : op.aggregates()) {
    agg_idx.push_back(a.column.empty() ? SIZE_MAX : is.index_of(a.column));
  }

  // Hash aggregation over packed group keys (see exec_internal.hpp);
  // first-seen order vector keeps the output deterministic.
  struct Group {
    Tuple key_values;
    std::vector<Accumulator> accs;
  };
  std::unordered_map<std::string, std::size_t> index;
  std::vector<Group> groups;
  std::string key;
  for (const Tuple& t : in->rows()) {
    key.clear();
    for (std::size_t gi : group_idx) append_packed_key(key, t[gi]);
    auto [it, inserted] = index.try_emplace(key, groups.size());
    if (inserted) {
      Group g;
      g.key_values.reserve(group_idx.size());
      for (std::size_t gi : group_idx) g.key_values.push_back(t[gi]);
      g.accs.resize(op.aggregates().size());
      groups.push_back(std::move(g));
    }
    std::vector<Accumulator>& accs = groups[it->second].accs;
    for (std::size_t a = 0; a < agg_idx.size(); ++a) {
      accs[a].feed(agg_idx[a] == SIZE_MAX ? Value::int64(1) : t[agg_idx[a]]);
    }
  }
  // SQL semantics: a global aggregate over an empty input yields one row.
  if (groups.empty() && op.group_by().empty()) {
    groups.push_back({Tuple{}, std::vector<Accumulator>(op.aggregates().size())});
  }

  auto out = std::make_shared<Table>(op.output_schema(),
                                     in->blocking_factor());
  const Schema& os = op.output_schema();
  for (const Group& g : groups) {
    Tuple row = g.key_values;
    for (std::size_t a = 0; a < g.accs.size(); ++a) {
      row.push_back(g.accs[a].result(op.aggregates()[a].fn,
                                     os.at(group_idx.size() + a).type));
    }
    out->append(std::move(row));
  }
  return out;
}

bool same_bag(const Table& a, const Table& b) {
  if (a.schema().size() != b.schema().size()) return false;
  if (a.row_count() != b.row_count()) return false;
  auto key = [](const Tuple& t) {
    std::string k;
    for (const Value& v : t) {
      k += v.to_string();
      k += '\x1f';
    }
    return k;
  };
  std::map<std::string, int> counts;
  for (const Tuple& t : a.rows()) counts[key(t)]++;
  for (const Tuple& t : b.rows()) {
    if (--counts[key(t)] < 0) return false;
  }
  return true;
}

}  // namespace mvd
