// Execution of logical plans against an in-memory Database.
//
// Two engines share one entry point. The row engine materializes each
// operator's result bottom-up as tuple vectors (shared plan fragments are
// computed once per run); the vectorized engine (ExecMode::kVectorized,
// src/exec/vectorized.hpp) runs the same plans over columnar batches with
// selection vectors and morsel parallelism — ExecMode::kFused adds its
// typed kernel layer (src/exec/fused.hpp). Both split equi-join
// conjuncts into a build/probe hash join and fall back to a nested loop
// otherwise, and both exist to (a) ground-truth the optimizer and MVPP
// rewrites — every rewritten plan must return the same bag of tuples as
// the canonical plan — and (b) measure the real effect of materializing
// the chosen views (bench Ext-D).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "src/algebra/aggregate.hpp"
#include "src/algebra/logical_plan.hpp"
#include "src/storage/database.hpp"

namespace mvd {

/// Work counters accumulated across one run().
struct ExecStats {
  /// Block accesses in the same accounting the cost model uses: scans and
  /// selects charge their input's blocks; a hash join charges both inputs
  /// once; a nested loop charges outer + outer-blocks * inner re-scans
  /// (outer = the smaller input, as in CostModel::join_op_cost).
  double blocks_read = 0;
  /// Tuples inspected by scan/select/join/aggregate operators (inputs,
  /// before filtering).
  double rows_scanned = 0;
  /// Row batches processed: one per operator input in the row engine, one
  /// per morsel in the vectorized engine.
  double batches = 0;
  /// Tuples that flowed out of each operator, keyed by the node's label
  /// (used to validate cardinality estimates).
  std::map<std::string, double> rows_out;
  /// Incremental maintenance only: compacted delta rows (inserts + deletes)
  /// applied to each refreshed view, keyed by the view's MVPP node name.
  std::map<std::string, double> delta_rows;
  /// Sharded execution only: rows/blocks moved by exchange operators
  /// (shuffle + broadcast + gather) during this run or refresh round.
  double rows_exchanged = 0;
  double blocks_exchanged = 0;
  /// Sharded execution only: one entry per shard with that shard's own
  /// counters (blocks read, rows out per node, ...). Empty for
  /// single-site runs. Totals above include every shard plus coordinator
  /// work (final merges, remainder plans).
  std::vector<ExecStats> per_shard;
};

/// Which engine Executor::run uses. kFused is the vectorized engine with
/// the typed kernel layer (src/exec/fused) enabled: fusable
/// select/project chains, numeric equi-joins and COUNT/SUM/AVG
/// aggregates run through specialized loops, everything else falls back
/// to the interpreted operators per node.
enum class ExecMode { kRow, kVectorized, kFused };

/// Engine selected by the MVD_EXEC_MODE environment variable ("row",
/// "vectorized"/"vec", or "fused"); kRow when unset or unrecognized.
/// MVD_EXEC_FUSED then overrides the kernel layer independently: truthy
/// ("1"/"true"/"on") upgrades any vectorized selection to kFused, falsy
/// ("0"/"false"/"off") demotes kFused back to plain kVectorized.
ExecMode default_exec_mode();

/// Short engine label for metrics and journal events: "row", "vec" or
/// "fused".
const char* exec_mode_name(ExecMode mode);

/// Vectorized-engine worker count from MVD_EXEC_THREADS (0 = hardware
/// auto); 1 (serial) when unset or unparsable.
std::size_t default_exec_threads();

/// Shard count from MVD_EXEC_SHARDS; 0 (single-site execution, no
/// sharded layer) when unset or unparsable. N >= 1 selects the sharded
/// execution layer (src/exec/sharded.hpp) in shard-aware drivers (mvprof,
/// benches) — N = 1 is the degenerate one-shard layout, still
/// bucket-partitioned and bit-identical to any other shard count.
std::size_t default_exec_shards();

class ColumnTableCache;

class Executor {
 public:
  explicit Executor(const Database& db, ExecMode mode = default_exec_mode(),
                    std::size_t threads = default_exec_threads());

  /// Snapshot-pinning overload: the executor co-owns `db`, so a serving
  /// layer can atomically swap in a newer snapshot while in-flight
  /// queries finish against the one they started on (mvserve's reader
  /// protocol). The pinned database must not be mutated while pinned.
  explicit Executor(std::shared_ptr<const Database> db,
                    ExecMode mode = default_exec_mode(),
                    std::size_t threads = default_exec_threads());

  ExecMode mode() const { return mode_; }

  /// Execute `plan`. Scan nodes resolve by relation name in the database
  /// (base tables and stored views alike). Throws ExecError for unknown
  /// relations, BindError for predicate binding failures.
  Table run(const PlanPtr& plan, ExecStats* stats = nullptr) const;

 private:
  using TableRef = std::shared_ptr<const Table>;

  /// Per-run row-engine state: the shared-fragment memo plus per-operator
  /// work tallies flushed to the MetricsRegistry at the end of run().
  struct RunContext;

  TableRef run_node(const PlanPtr& plan, ExecStats* stats,
                    RunContext& ctx) const;

  TableRef exec_scan(const ScanOp& op, ExecStats* stats) const;
  TableRef exec_select(const SelectOp& op, const TableRef& in,
                       ExecStats* stats) const;
  TableRef exec_project(const ProjectOp& op, const TableRef& in) const;
  TableRef exec_join(const JoinOp& op, const TableRef& left,
                     const TableRef& right, ExecStats* stats) const;
  TableRef exec_aggregate(const AggregateOp& op, const TableRef& in,
                          ExecStats* stats) const;

  const Database* db_;
  /// Set by the pinning constructor; keeps the snapshot alive for the
  /// executor's lifetime (db_ points into it).
  std::shared_ptr<const Database> pinned_;
  ExecMode mode_;
  std::size_t threads_;
  /// Columnar conversions, shared across runs of this Executor (filled
  /// lazily, vectorized/fused modes only).
  std::shared_ptr<ColumnTableCache> column_cache_;
};

/// Convenience: bag-equality of two tables (same schema arity, same
/// multiset of tuples, order-insensitive). Used by plan-equivalence tests.
bool same_bag(const Table& a, const Table& b);

}  // namespace mvd
