// Execution of logical plans against an in-memory Database.
//
// The executor materializes each operator's result bottom-up (shared plan
// fragments are computed once per run). Equi-join conjuncts are executed
// with a build/probe hash join so big workloads stay fast; joins without
// equi conjuncts fall back to a nested loop. It exists to (a) ground-truth
// the optimizer and MVPP rewrites — every rewritten plan must return the
// same bag of tuples as the canonical plan — and (b) measure the real
// effect of materializing the chosen views (bench Ext-D).
#pragma once

#include <map>
#include <memory>

#include "src/algebra/aggregate.hpp"
#include "src/algebra/logical_plan.hpp"
#include "src/storage/database.hpp"

namespace mvd {

/// Work counters accumulated across one run().
struct ExecStats {
  /// Block accesses in the same accounting the cost model uses: each scan
  /// charges the table's blocks; a hash join charges both inputs once; a
  /// nested loop charges outer + outer-blocks * inner re-scans.
  double blocks_read = 0;
  /// Tuples that flowed out of each operator, keyed by the node's label
  /// (used to validate cardinality estimates).
  std::map<std::string, double> rows_out;
};

class Executor {
 public:
  explicit Executor(const Database& db) : db_(&db) {}

  /// Execute `plan`. Scan nodes resolve by relation name in the database
  /// (base tables and stored views alike). Throws ExecError for unknown
  /// relations, BindError for predicate binding failures.
  Table run(const PlanPtr& plan, ExecStats* stats = nullptr) const;

 private:
  using TableRef = std::shared_ptr<const Table>;

  TableRef run_node(const PlanPtr& plan, ExecStats* stats,
                    std::map<const LogicalOp*, TableRef>& memo) const;

  TableRef exec_scan(const ScanOp& op, ExecStats* stats) const;
  TableRef exec_select(const SelectOp& op, const TableRef& in,
                       ExecStats* stats) const;
  TableRef exec_project(const ProjectOp& op, const TableRef& in) const;
  TableRef exec_join(const JoinOp& op, const TableRef& left,
                     const TableRef& right, ExecStats* stats) const;
  TableRef exec_aggregate(const AggregateOp& op, const TableRef& in) const;

  const Database* db_;
};

/// Convenience: bag-equality of two tables (same schema arity, same
/// multiset of tuples, order-insensitive). Used by plan-equivalence tests.
bool same_bag(const Table& a, const Table& b);

}  // namespace mvd
