// Typed operator kernels for the fused execution path (src/exec/fused).
//
// Each kernel is a template expanded per (compare-op, column-type)
// combination, so the inner loop the compiler sees is a monomorphic,
// branch-free pass over raw column arrays — the shape auto-vectorizers
// recognize. Two loop families cover predicate evaluation:
//
//   * range kernels    — dense row ranges: out[k] = i; k += (lhs(i) OP
//     rhs(i)). The first conjunct over an identity source never
//     materializes a full selection vector — survivor ids are emitted
//     directly in one pass over the raw columns.
//   * sel kernels      — selection vectors: out[k] = sel[i]; k += pred.
//     The branchless-append form of the shrinking-selection filter;
//     conjuncts after the first run here so the scan narrows like the
//     interpreted engine's short-circuit, minus its per-node overhead.
//
// Join build/probe and aggregation share PackedKey, a fixed-width (two
// word) group/join key holding double bit patterns — the same encoding
// exec_internal.hpp's packed string keys use, minus the allocation — and
// two open-addressing tables (JoinKeyMap, GroupKeyMap) whose iteration
// order is fully determined by insertion order, preserving the engines'
// deterministic first-seen/active-order contracts.
//
// Numeric comparison semantics match Value::compare: both sides evaluate
// through double (int64 1 equals double 1.0). Callers guarantee operands
// are type-compatible; mixed or non-simple predicates never reach these
// kernels (the chain detector refuses them and the interpreted path runs
// instead).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/algebra/expr.hpp"
#include "src/common/assert.hpp"

namespace mvd {

// ---- Comparison core --------------------------------------------------

template <CompareOp Op, typename T>
inline bool kernel_cmp(const T& a, const T& b) {
  if constexpr (Op == CompareOp::kEq) {
    return a == b;
  } else if constexpr (Op == CompareOp::kNe) {
    return a != b;
  } else if constexpr (Op == CompareOp::kLt) {
    return a < b;
  } else if constexpr (Op == CompareOp::kLe) {
    return a <= b;
  } else if constexpr (Op == CompareOp::kGt) {
    return a > b;
  } else {
    return a >= b;
  }
}

// ---- Operand accessors ------------------------------------------------
// Tiny value types (pointer + nothing else) so the expanded loops index
// raw arrays directly. Numeric accessors return double, matching
// Value::compare's numeric semantics for every column type.

template <typename TCol>
struct NumColAcc {
  const TCol* p;
  double operator()(std::uint32_t r) const {
    return static_cast<double>(p[r]);
  }
};

struct NumLitAcc {
  double v;
  double operator()(std::uint32_t) const { return v; }
};

// Pure-int64 accessors for the exact literal-rewrite fast path (see
// int_cmp_rewrite in fused.cpp): no per-row int→double conversion, so the
// expanded loop is a plain integer compare over the raw column.
struct IntColAcc {
  const std::int64_t* p;
  std::int64_t operator()(std::uint32_t r) const { return p[r]; }
};

struct IntLitAcc {
  std::int64_t v;
  std::int64_t operator()(std::uint32_t) const { return v; }
};

struct StrColAcc {
  const std::string* p;
  const std::string& operator()(std::uint32_t r) const { return p[r]; }
};

struct StrLitAcc {
  const std::string* v;
  const std::string& operator()(std::uint32_t) const { return *v; }
};

// ---- Range kernels (dense row ranges) ---------------------------------

/// Filter the dense physical row range [lo, hi) through one comparison,
/// writing surviving row ids to `out` in ascending order. Returns the
/// survivor count. One branch-free pass: the ids of a dense range are
/// implicit, so nothing is materialized for rows that fail.
template <CompareOp Op, typename L, typename R>
inline std::size_t kernel_filter_range(L lhs, R rhs, std::uint32_t lo,
                                       std::uint32_t hi, std::uint32_t* out) {
  std::size_t k = 0;
  for (std::uint32_t i = lo; i < hi; ++i) {
    out[k] = i;
    k += kernel_cmp<Op>(lhs(i), rhs(i)) ? 1 : 0;
  }
  return k;
}

// ---- Selection-vector kernels -----------------------------------------

/// Filter `sel[0, n)` through one comparison, writing survivors to `out`
/// in order (out may alias sel: the write index never passes the read
/// index). Returns the survivor count.
template <CompareOp Op, typename L, typename R>
inline std::size_t kernel_filter_sel(L lhs, R rhs, const std::uint32_t* sel,
                                     std::size_t n, std::uint32_t* out) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t r = sel[i];
    out[k] = r;
    k += kernel_cmp<Op>(lhs(r), rhs(r)) ? 1 : 0;
  }
  return k;
}

/// Expand a runtime CompareOp into the six template instantiations of a
/// dense range filter kernel over fixed accessor types.
template <typename L, typename R>
inline std::size_t dispatch_filter_range(CompareOp op, L lhs, R rhs,
                                         std::uint32_t lo, std::uint32_t hi,
                                         std::uint32_t* out) {
  switch (op) {
    case CompareOp::kEq:
      return kernel_filter_range<CompareOp::kEq>(lhs, rhs, lo, hi, out);
    case CompareOp::kNe:
      return kernel_filter_range<CompareOp::kNe>(lhs, rhs, lo, hi, out);
    case CompareOp::kLt:
      return kernel_filter_range<CompareOp::kLt>(lhs, rhs, lo, hi, out);
    case CompareOp::kLe:
      return kernel_filter_range<CompareOp::kLe>(lhs, rhs, lo, hi, out);
    case CompareOp::kGt:
      return kernel_filter_range<CompareOp::kGt>(lhs, rhs, lo, hi, out);
    case CompareOp::kGe:
      return kernel_filter_range<CompareOp::kGe>(lhs, rhs, lo, hi, out);
  }
  MVD_ASSERT(false);
  return 0;
}

/// Expand a runtime CompareOp into the six instantiations of a sel-vector
/// filter kernel over fixed accessor types.
template <typename L, typename R>
inline std::size_t dispatch_filter_sel(CompareOp op, L lhs, R rhs,
                                       const std::uint32_t* sel, std::size_t n,
                                       std::uint32_t* out) {
  switch (op) {
    case CompareOp::kEq:
      return kernel_filter_sel<CompareOp::kEq>(lhs, rhs, sel, n, out);
    case CompareOp::kNe:
      return kernel_filter_sel<CompareOp::kNe>(lhs, rhs, sel, n, out);
    case CompareOp::kLt:
      return kernel_filter_sel<CompareOp::kLt>(lhs, rhs, sel, n, out);
    case CompareOp::kLe:
      return kernel_filter_sel<CompareOp::kLe>(lhs, rhs, sel, n, out);
    case CompareOp::kGt:
      return kernel_filter_sel<CompareOp::kGt>(lhs, rhs, sel, n, out);
    case CompareOp::kGe:
      return kernel_filter_sel<CompareOp::kGe>(lhs, rhs, sel, n, out);
  }
  MVD_ASSERT(false);
  return 0;
}

// ---- Packed fixed-width keys ------------------------------------------

/// A join/group key of up to two columns packed into two words. Numeric
/// columns contribute their double bit pattern (so int64 1 and double 1.0
/// key equal, as in Value::operator== and the packed string keys), bools
/// one 0/1 word.
struct PackedKey {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool operator==(const PackedKey&) const = default;
};

/// Raw double bit pattern — the aggregation key encoding (identical
/// grouping to exec_internal.hpp's append_packed_f64, -0.0 and NaN bits
/// included).
inline std::uint64_t key_bits_raw(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Join-key bit pattern: -0.0 folds onto +0.0 so bit equality matches
/// numeric equality. NaN keys are the caller's problem (join kernels skip
/// NaN rows entirely — NaN joins nothing under numeric equality).
inline std::uint64_t key_bits_join(double v) {
  if (v == 0.0) v = 0.0;  // -0.0 == 0.0 numerically; normalize the bits
  return key_bits_raw(v);
}

inline std::uint64_t mix_key_word(std::uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct PackedKeyHash {
  std::size_t operator()(const PackedKey& k) const {
    return static_cast<std::size_t>(mix_key_word(k.a ^ mix_key_word(k.b)));
  }
};

// ---- Join hash table --------------------------------------------------

/// Open-addressing multimap from PackedKey to build-row chains. Rows with
/// equal keys chain in insertion order, so a probe emits matches in
/// exactly the active-row order the interpreted engine produces. Exact
/// keys (not hashes) are stored: probe hits need no equality re-check.
class JoinKeyMap {
 public:
  explicit JoinKeyMap(std::size_t expected_rows) {
    std::size_t cap = 16;
    while (cap < expected_rows * 2) cap <<= 1;
    slots_.assign(cap, Slot{});
    entries_.reserve(expected_rows);
  }

  void insert(const PackedKey& key, std::uint32_t row) {
    Slot& s = slot_for(key);
    const std::int32_t e = static_cast<std::int32_t>(entries_.size());
    entries_.push_back({row, -1});
    if (s.head < 0) {
      s.key = key;
      s.used = true;
      s.head = e;
    } else {
      entries_[static_cast<std::size_t>(s.tail)].next = e;
    }
    s.tail = e;
  }

  /// Head entry index for `key`, or -1. Walk with entry().
  std::int32_t find(const PackedKey& key) const {
    std::size_t i = PackedKeyHash{}(key) & (slots_.size() - 1);
    while (slots_[i].used) {
      if (slots_[i].key == key) return slots_[i].head;
      i = (i + 1) & (slots_.size() - 1);
    }
    return -1;
  }

  struct Entry {
    std::uint32_t row;
    std::int32_t next;
  };
  const Entry& entry(std::int32_t i) const {
    return entries_[static_cast<std::size_t>(i)];
  }

 private:
  struct Slot {
    PackedKey key;
    std::int32_t head = -1;
    std::int32_t tail = -1;
    bool used = false;
  };

  Slot& slot_for(const PackedKey& key) {
    std::size_t i = PackedKeyHash{}(key) & (slots_.size() - 1);
    while (slots_[i].used && !(slots_[i].key == key)) {
      i = (i + 1) & (slots_.size() - 1);
    }
    return slots_[i];
  }

  std::vector<Slot> slots_;
  std::vector<Entry> entries_;
};

// ---- Aggregation group index ------------------------------------------

/// Open-addressing map from PackedKey to a dense group index, growing as
/// groups appear. Group numbering is assignment order (first seen), which
/// the caller keeps deterministic.
class GroupKeyMap {
 public:
  GroupKeyMap() { slots_.assign(64, Slot{}); }

  /// Index of `key`'s group, inserting `next_group` when unseen. Returns
  /// the (existing or new) group index.
  std::int32_t find_or_insert(const PackedKey& key, std::int32_t next_group) {
    if ((used_ + 1) * 4 >= slots_.size() * 3) grow();
    std::size_t i = PackedKeyHash{}(key) & (slots_.size() - 1);
    while (slots_[i].group >= 0) {
      if (slots_[i].key == key) return slots_[i].group;
      i = (i + 1) & (slots_.size() - 1);
    }
    slots_[i].key = key;
    slots_[i].group = next_group;
    ++used_;
    return next_group;
  }

 private:
  struct Slot {
    PackedKey key;
    std::int32_t group = -1;
  };

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    for (const Slot& s : old) {
      if (s.group < 0) continue;
      std::size_t i = PackedKeyHash{}(s.key) & (slots_.size() - 1);
      while (slots_[i].group >= 0) i = (i + 1) & (slots_.size() - 1);
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t used_ = 0;
};

}  // namespace mvd
