// Fused typed operator kernels — the ExecMode::kFused layer over the
// vectorized engine.
//
// The interpreted batch engine runs one operator per pass: each select
// builds a per-morsel selection vector, hands it to
// CompiledExpr::filter_batch (which re-dispatches on column type per
// conjunct), and each project re-maps columns in a separate node visit.
// The fused layer collapses a maximal scan→select→project segment into
// one FusedChain compiled ahead of execution: every predicate conjunct
// becomes a FilterStep bound to a concrete (compare-op × column-type ×
// operand-shape) kernel from kernels.hpp, and each source morsel flows
// through the whole chain in a single specialized loop — a dense range
// filter for the first conjunct over an identity source (survivor ids
// are implicit, nothing materializes for the full morsel), branch-free
// shrinking-selection filtering for every conjunct after that, no
// intermediate selection-vector round-trips between operators.
//
// Contracts preserved exactly (the equivalence tests compare all three
// engines):
//   * Output rows are bit-identical to the interpreted engine at any
//     thread count: chains partition over the *source's* fixed morsels
//     and concatenate survivors in morsel order, and order-preserving
//     filters compose independently of morsel boundaries.
//   * ExecStats and per-operator registry tallies replicate the
//     interpreted engine's per-node arithmetic (each fused select still
//     charges its input's blocks/rows/morsels; projects stay free).
//   * Unfusable operators — OR/NOT predicates, mixed-type or non-simple
//     comparisons, shared interior DAG nodes — terminate the chain and
//     run interpreted; detect_fused_chain simply refuses them.
//
// Join probe and aggregation get packed-key kernels (PackedKey +
// JoinKeyMap/GroupKeyMap) used by vectorized.cpp's fast paths when keys
// are numeric and narrow; they reproduce the interpreted match/group
// order row for row.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/algebra/logical_plan.hpp"
#include "src/exec/executor.hpp"
#include "src/exec/vec_internal.hpp"

namespace mvd {

/// One compiled comparison conjunct of a fused select. Column operands
/// are *source-logical* indices (positions in the chain source's schema);
/// they bind to physical columns through the source VecRel's column map
/// at execution time.
struct FilterStep {
  enum class Shape { kNumColLit, kNumColCol, kStrColLit, kStrColCol };
  Shape shape = Shape::kNumColLit;
  CompareOp op = CompareOp::kEq;
  std::size_t lhs_col = 0;
  ColumnKind lhs_kind = ColumnKind::kInt64Col;
  std::size_t rhs_col = 0;  // column shapes only
  ColumnKind rhs_kind = ColumnKind::kInt64Col;
  double num_lit = 0;       // kNumColLit
  std::string str_lit;      // kStrColLit
};

/// One operator of a fused chain, listed bottom-up (nearest the source
/// first). Projects carry no steps — their column re-maps are folded into
/// later steps' indices and the chain's output map at compile time; they
/// remain listed so their rows_out entries get recorded.
struct FusedStage {
  OpKind kind = OpKind::kSelect;
  std::string label;
  std::vector<FilterStep> steps;  // kSelect only
};

/// A compiled scan→select→project segment.
struct FusedChain {
  PlanPtr source;  // executed through the normal engine, then fed here
  std::vector<FusedStage> stages;          // bottom-up
  std::vector<std::size_t> out_cols;       // output logical -> source logical
  Schema out_schema;
  std::size_t select_count = 0;
};

/// Parent-edge counts for every node of the plan DAG. A node referenced
/// by two parents executes once (the engines memoize); fusing *through*
/// it would re-run it per chain, so the detector only passes through
/// interior nodes with one use.
std::map<const LogicalOp*, std::size_t> plan_use_counts(const PlanPtr& plan);

/// Compile the maximal fusable select/project chain rooted at `plan`.
/// Returns nullopt when `plan` itself is not a fusable select/project or
/// the chain contains no select (pure projections are already free in the
/// interpreted engine).
std::optional<FusedChain> detect_fused_chain(
    const PlanPtr& plan,
    const std::map<const LogicalOp*, std::size_t>& use_count);

/// Execute `chain` over the evaluated source. Morsel-parallel over the
/// source's fixed morsels; survivors concatenate in morsel order. Updates
/// `stats` (plus rows_out per stage label) and the per-OpKind tallies
/// with the same arithmetic the interpreted engine applies per node;
/// either may be null.
VecRel run_fused_chain(const FusedChain& chain, const VecRel& src,
                       std::size_t threads, ExecStats* stats,
                       double* op_blocks, double* op_rows);

// ---- Join / aggregation kernels ---------------------------------------

/// Matched (probe, build) physical row pairs, probe-morsel-major — the
/// same emission order as the interpreted probe loop.
struct JoinPairs {
  std::vector<std::uint32_t> probe_rows;
  std::vector<std::uint32_t> build_rows;
};

/// True when every join key column on both sides is numeric (int64 or
/// double) and there are one or two keys — the shapes PackedKey covers.
bool fused_join_keys_ok(const ColumnTable& build,
                        const std::vector<std::size_t>& build_keys,
                        const ColumnTable& probe,
                        const std::vector<std::size_t>& probe_keys);

/// Packed-key hash join: morsel-parallel key packing, serial insertion in
/// active order (deterministic per-key chains), morsel-parallel probe.
/// Rows whose key is NaN are skipped on both sides — NaN joins nothing
/// under numeric equality, matching the interpreted engine. Requires
/// fused_join_keys_ok.
JoinPairs run_fused_join(const VecRel& build,
                         const std::vector<std::size_t>& build_keys,
                         const VecRel& probe,
                         const std::vector<std::size_t>& probe_keys,
                         std::size_t threads);

/// True when the aggregate fits the packed-key kernel: at most two group
/// columns, each int64/double/bool; aggregates restricted to
/// COUNT/SUM/AVG with numeric (or COUNT-star / COUNT-anything) inputs.
/// MIN/MAX and string group keys use the interpreted path.
bool fused_aggregate_ok(const AggregateOp& op, const ColumnTable& data,
                        const std::vector<std::size_t>& group_cols,
                        const std::vector<std::size_t>& agg_cols);

/// Packed-key hash aggregation with count/sum accumulators. Serial when
/// `threads <= 1` or the input fits one morsel, otherwise per-morsel
/// partials merged in morsel order — the same split (and therefore the
/// same floating-point addition order) as the interpreted engine.
/// `group_cols`/`agg_cols` are physical columns (SIZE_MAX = COUNT(*)).
/// Requires fused_aggregate_ok.
VecRel run_fused_aggregate(const AggregateOp& op, const VecRel& in,
                           const std::vector<std::size_t>& group_cols,
                           const std::vector<std::size_t>& agg_cols,
                           std::size_t threads);

}  // namespace mvd
