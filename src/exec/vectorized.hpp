// The columnar batch engine behind Executor's ExecMode::kVectorized.
//
// Operators pass around selection vectors over shared ColumnTables
// instead of materialized tuple vectors; cell data is copied only when a
// join or aggregate compacts its output and at the final sink. Scans,
// selects, hash-join builds/probes and aggregation run morsel-parallel
// (fixed kMorselRows morsels, per-morsel partials merged on the calling
// thread in morsel order) so the output is bit-identical at any thread
// count. See DESIGN.md §10.
#pragma once

#include <map>
#include <memory>

#include "src/exec/executor.hpp"
#include "src/storage/column_table.hpp"

namespace mvd {

/// Memoized columnar conversions of stored tables, keyed by table
/// identity. An entry is invalidated when the table's row count changes;
/// callers that mutate stored tables in place between runs without
/// changing the row count must use a fresh Executor (constructing one is
/// free — the cache fills lazily).
class ColumnTableCache {
 public:
  std::shared_ptr<const ColumnTable> get(const Table& table);

 private:
  struct Entry {
    std::size_t rows = 0;
    std::shared_ptr<const ColumnTable> data;
  };
  std::map<const Table*, Entry> cache_;
};

/// Execute `plan` with the batch engine. Semantics match the row engine:
/// same bag of tuples, same ExecStats block accounting, same rows_out
/// entries; only row order may differ between the two engines (and is
/// itself deterministic per engine). `threads` is the morsel worker
/// count (1 = serial, 0 = hardware auto). With `fused` set, fusable
/// select/project chains, numeric equi-joins and COUNT/SUM/AVG
/// aggregates run through the typed kernels of src/exec/fused instead of
/// the interpreted operators — same output bit for bit, same stats; the
/// interpreted path remains the fallback per operator (see DESIGN.md
/// §13).
Table run_vectorized(const Database& db, const PlanPtr& plan, ExecStats* stats,
                     std::size_t threads, ColumnTableCache& cache,
                     bool fused = false);

}  // namespace mvd
