// Internals shared by the interpreted vectorized engine (vectorized.cpp)
// and the fused kernel layer (fused.cpp): the selection-vector batch
// representation, key hashing/equality with Value semantics, and the
// per-worker observability probe. Formerly private to vectorized.cpp;
// split out when the fused path (PR 6) needed the same plumbing.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/catalog/schema.hpp"
#include "src/common/hash.hpp"
#include "src/obs/trace.hpp"
#include "src/storage/column_table.hpp"

namespace mvd {

/// A batch-operator result: shared columnar data viewed through a
/// selection vector of physical row ids (order-significant) and a
/// logical-to-physical column map. Scan/select/project never copy cell
/// data; join and aggregate compact into fresh ColumnTables.
struct VecRel {
  std::shared_ptr<const ColumnTable> data;
  bool identity = false;           // all physical rows, in order
  std::vector<std::uint32_t> sel;  // used when !identity
  std::vector<std::size_t> cols;   // logical col -> physical col
  Schema schema;                   // logical schema of this result
  double blocking_factor = 10.0;

  std::size_t active_rows() const {
    return identity ? data->row_count() : sel.size();
  }
  /// Same accounting as Table::blocks() over the active row count.
  double blocks() const {
    const std::size_t n = active_rows();
    if (n == 0) return 0;
    return std::max(1.0,
                    std::ceil(static_cast<double>(n) / blocking_factor));
  }
  std::uint32_t physical(std::size_t i) const {
    return identity ? static_cast<std::uint32_t>(i) : sel[i];
  }
};

inline std::uint64_t column_hash_keys(const ColumnTable& data,
                                      const std::vector<std::size_t>& key_cols,
                                      std::uint32_t row) {
  std::size_t seed = 0x51ed5eedULL;
  for (std::size_t c : key_cols) {
    std::size_t h = 0;
    switch (data.kind(c)) {
      case ColumnKind::kInt64Col:
        // Numerics hash through double so int and double keys that
        // compare equal also hash equal (same rule as Value::hash).
        hash_combine(h, static_cast<double>(data.i64(c)[row]));
        break;
      case ColumnKind::kDoubleCol:
        hash_combine(h, data.f64(c)[row]);
        break;
      case ColumnKind::kStringCol:
        hash_combine(h, data.str(c)[row]);
        break;
      case ColumnKind::kBoolCol:
        hash_combine(h, data.b8(c)[row] != 0);
        break;
    }
    seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  }
  return seed;
}

inline bool numeric_cell(const ColumnTable& data, std::size_t col,
                         std::uint32_t row, double& out) {
  switch (data.kind(col)) {
    case ColumnKind::kInt64Col:
      out = static_cast<double>(data.i64(col)[row]);
      return true;
    case ColumnKind::kDoubleCol:
      out = data.f64(col)[row];
      return true;
    default:
      return false;
  }
}

/// Equality with Value::operator== semantics: numerics compare as double
/// across int/double kinds, other kinds must match exactly.
inline bool column_keys_equal(const ColumnTable& a,
                              const std::vector<std::size_t>& ak,
                              std::uint32_t ar, const ColumnTable& b,
                              const std::vector<std::size_t>& bk,
                              std::uint32_t br) {
  for (std::size_t k = 0; k < ak.size(); ++k) {
    double x = 0, y = 0;
    if (numeric_cell(a, ak[k], ar, x)) {
      if (!numeric_cell(b, bk[k], br, y) || x != y) return false;
      continue;
    }
    if (a.kind(ak[k]) != b.kind(bk[k])) return false;
    switch (a.kind(ak[k])) {
      case ColumnKind::kStringCol:
        if (a.str(ak[k])[ar] != b.str(bk[k])[br]) return false;
        break;
      case ColumnKind::kBoolCol:
        if (a.b8(ak[k])[ar] != b.b8(bk[k])[br]) return false;
        break;
      default:
        return false;
    }
  }
  return true;
}

/// Names one worker pool for observability: the span category its stints
/// record under plus the counter track / busy counter they publish to.
/// Each engine layer has its own track so mvprof separates interpreted
/// morsel workers from kernel workers.
struct WorkerTrack {
  const char* span_category;
  const char* active_track;
  const char* busy_counter;
  std::atomic<int> active{0};
};

inline WorkerTrack& vec_worker_track() {
  static WorkerTrack t{"exec.vec.worker", "exec/vec/active_workers",
                       "exec/vec/busy_us"};
  return t;
}

inline WorkerTrack& kernel_worker_track() {
  static WorkerTrack t{"exec.kernel.worker", "exec/kernel/active_workers",
                       "exec/kernel/busy_us"};
  return t;
}

/// Scope probe for a morsel worker's stint inside a parallel region:
/// records a per-thread busy span, samples the track's active-worker
/// counter (the morsel pool's occupancy) on entry/exit, and adds the
/// stint's wall time to the track's busy counter. Free when tracing is
/// off.
class WorkerProbe {
 public:
  WorkerProbe(WorkerTrack& track, const char* what)
      : track_(track), span_(track.span_category, what) {
    timed_ = counters_enabled();
    if (timed_) t0_ = Tracer::now_us();
    if (span_.active()) {
      const int n = track_.active.fetch_add(1, std::memory_order_relaxed) + 1;
      Tracer::global().counter(track_.active_track, static_cast<double>(n));
    }
  }
  WorkerProbe(const WorkerProbe&) = delete;
  WorkerProbe& operator=(const WorkerProbe&) = delete;
  ~WorkerProbe() {
    if (span_.active()) {
      const int n = track_.active.fetch_sub(1, std::memory_order_relaxed) - 1;
      Tracer::global().counter(track_.active_track, static_cast<double>(n));
    }
    if (timed_) {
      MetricsRegistry::global().counter(track_.busy_counter)
          .add(Tracer::now_us() - t0_);
    }
  }

 private:
  WorkerTrack& track_;
  TraceSpan span_;
  bool timed_ = false;
  double t0_ = 0;
};

}  // namespace mvd
