#include "src/exec/sharded.hpp"

#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/algebra/expr.hpp"
#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/exec/exec_internal.hpp"
#include "src/obs/trace.hpp"

namespace mvd {

namespace {

// Path count (not node count): a DAG node shared under two parents is
// reached twice, which is exactly what matters — each reference would
// need its own exchange.
std::size_t count_partitioned_paths(const PlanPtr& node,
                                    const ShardedDatabase& db,
                                    const ScanOp** leaf) {
  if (node->kind() == OpKind::kScan) {
    const auto& scan = static_cast<const ScanOp&>(*node);
    if (db.is_partitioned(scan.relation())) {
      *leaf = &scan;
      return 1;
    }
    return 0;
  }
  std::size_t refs = 0;
  for (const PlanPtr& c : node->children()) {
    refs += count_partitioned_paths(c, db, leaf);
  }
  return refs;
}

// Root-to-leaf path; unique when the leaf has exactly one reference.
bool find_spine(const PlanPtr& node, const LogicalOp* leaf,
                std::vector<const LogicalOp*>& path) {
  path.push_back(node.get());
  if (node.get() == leaf) return true;
  for (const PlanPtr& c : node->children()) {
    if (find_spine(c, leaf, path)) return true;
  }
  path.pop_back();
  return false;
}

std::optional<std::size_t> try_find(const Schema& schema,
                                    const std::string& name) {
  try {
    return schema.find(name);
  } catch (const BindError&) {
    return std::nullopt;  // ambiguous bare name: not the key
  }
}

// `partition_key == literal` in the select chain directly above the leaf
// routes the query to the key's owning bucket (hence shard). Conservative:
// equality conjuncts higher up the spine are not inspected.
std::optional<std::size_t> find_route(
    const std::vector<const LogicalOp*>& spine, const ShardedDatabase& db,
    const ScanOp& leaf) {
  const std::string* key = db.partition_key(leaf.relation());
  if (key == nullptr) return std::nullopt;
  auto key_idx = try_find(leaf.output_schema(), *key);
  if (!key_idx.has_value()) return std::nullopt;
  for (std::size_t i = spine.size() - 1; i-- > 0;) {
    if (spine[i]->kind() != OpKind::kSelect) break;
    const auto& sel = static_cast<const SelectOp&>(*spine[i]);
    for (const ExprPtr& c : conjuncts_of(sel.predicate())) {
      if (c->kind() != ExprKind::kComparison) continue;
      const auto& cmp = static_cast<const ComparisonExpr&>(*c);
      if (cmp.op() != CompareOp::kEq) continue;
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      if (cmp.lhs()->kind() == ExprKind::kColumn &&
          cmp.rhs()->kind() == ExprKind::kLiteral) {
        col = cmp.lhs().get();
        lit = cmp.rhs().get();
      } else if (cmp.lhs()->kind() == ExprKind::kLiteral &&
                 cmp.rhs()->kind() == ExprKind::kColumn) {
        col = cmp.rhs().get();
        lit = cmp.lhs().get();
      } else {
        continue;
      }
      auto idx = try_find(leaf.output_schema(),
                          static_cast<const ColumnExpr&>(*col).name());
      if (idx.has_value() && *idx == *key_idx) {
        return ShardedTable::bucket_of(
            static_cast<const LiteralExpr&>(*lit).value());
      }
    }
  }
  return std::nullopt;
}

// Everything except per_shard (the caller owns that layout).
void add_stats(ExecStats& into, const ExecStats& from) {
  into.blocks_read += from.blocks_read;
  into.rows_scanned += from.rows_scanned;
  into.batches += from.batches;
  for (const auto& [k, v] : from.rows_out) into.rows_out[k] += v;
  for (const auto& [k, v] : from.delta_rows) into.delta_rows[k] += v;
  into.rows_exchanged += from.rows_exchanged;
  into.blocks_exchanged += from.blocks_exchanged;
}

}  // namespace

ShardPlanAnalysis analyze_shard_plan(const PlanPtr& plan,
                                     const ShardedDatabase& db) {
  ShardPlanAnalysis a;
  const ScanOp* leaf = nullptr;
  a.refs = count_partitioned_paths(plan, db, &leaf);
  a.leaf = leaf;
  if (a.refs != 1) return a;
  std::vector<const LogicalOp*> spine;
  find_spine(plan, leaf, spine);
  for (std::size_t i = spine.size(); i-- > 0;) {
    if (spine[i]->kind() == OpKind::kAggregate) {
      a.spine_aggregate = static_cast<const AggregateOp*>(spine[i]);
      break;
    }
  }
  a.route_bucket = find_route(spine, db, *leaf);
  return a;
}

PlanPtr replace_subtree(const PlanPtr& plan, const LogicalOp* target,
                        const PlanPtr& repl) {
  if (plan.get() == target) return repl;
  const std::vector<PlanPtr>& children = plan->children();
  std::vector<PlanPtr> rebuilt;
  rebuilt.reserve(children.size());
  bool changed = false;
  for (const PlanPtr& c : children) {
    PlanPtr nc = replace_subtree(c, target, repl);
    changed = changed || nc != c;
    rebuilt.push_back(std::move(nc));
  }
  if (!changed) return plan;
  switch (plan->kind()) {
    case OpKind::kScan:
      return plan;
    case OpKind::kSelect:
      return make_select(rebuilt[0],
                         static_cast<const SelectOp&>(*plan).predicate());
    case OpKind::kProject:
      return make_project(rebuilt[0],
                          static_cast<const ProjectOp&>(*plan).columns());
    case OpKind::kJoin:
      return make_join(rebuilt[0], rebuilt[1],
                       static_cast<const JoinOp&>(*plan).predicate());
    case OpKind::kAggregate: {
      const auto& agg = static_cast<const AggregateOp&>(*plan);
      return make_aggregate(rebuilt[0], agg.group_by(), agg.aggregates());
    }
  }
  throw ExecError("replace_subtree: unknown operator kind");
}

ShardedExecutor::ShardedExecutor(ShardedDatabase& db, ExecMode mode,
                                 std::size_t threads)
    : db_(&db), mode_(mode), threads_(threads) {
  bucket_exec_.resize(ShardedDatabase::kBuckets);
}

void ShardedExecutor::refresh_executors() const {
  if (cached_generation_ == db_->generation()) return;
  db_->sync_replicas();
  for (std::size_t b = 0; b < ShardedDatabase::kBuckets; ++b) {
    bucket_exec_[b] =
        std::make_unique<Executor>(db_->bucket(b), mode_, threads_);
  }
  coord_exec_ =
      std::make_unique<Executor>(db_->coordinator(), mode_, threads_);
  cached_generation_ = db_->generation();
}

std::pair<std::size_t, std::size_t> ShardedExecutor::shard_span(
    const ShardPlanAnalysis& a) const {
  if (a.route_bucket.has_value()) {
    const std::size_t s = db_->shard_of_bucket(*a.route_bucket);
    return {s, s + 1};
  }
  return {0, db_->shards()};
}

void ShardedExecutor::merge_shard_stats(
    ExecStats* stats, std::vector<ExecStats> shard_stats) const {
  if (stats == nullptr) return;
  for (const ExecStats& s : shard_stats) add_stats(*stats, s);
  if (stats->per_shard.size() != shard_stats.size()) {
    stats->per_shard = std::move(shard_stats);
  } else {
    for (std::size_t s = 0; s < shard_stats.size(); ++s) {
      add_stats(stats->per_shard[s], shard_stats[s]);
    }
  }
}

Table ShardedExecutor::run(const PlanPtr& plan, ExecStats* stats) const {
  refresh_executors();
  const ShardPlanAnalysis a = analyze_shard_plan(plan, *db_);
  if (a.refs == 0) return coord_exec_->run(plan, stats);
  if (a.refs > 1) {
    throw ExecError("sharded execution supports one partitioned-leaf "
                    "reference per plan (cross-shard repartitioning is not "
                    "implemented); plan references " +
                    std::to_string(a.refs));
  }
  if (a.spine_aggregate != nullptr) {
    return run_spine_aggregate(plan, a, stats);
  }

  // Non-aggregate spine: full plan per bucket, bucket-order concat.
  const auto [s_begin, s_end] = shard_span(a);
  std::vector<std::optional<Table>> results(ShardedDatabase::kBuckets);
  std::vector<ExecStats> shard_stats(db_->shards());
  parallel_shards(s_end - s_begin, threads_,
                  [&](std::size_t, std::size_t wb, std::size_t we) {
                    for (std::size_t s = s_begin + wb; s < s_begin + we; ++s) {
                      const auto [b0, b1] = db_->bucket_range(s);
                      for (std::size_t b = b0; b < b1; ++b) {
                        // Fresh stats per bucket run: Executor::run
                        // assigns rows_out by label, so sharing a slot
                        // would keep only the last bucket's counts.
                        ExecStats bucket_stats;
                        results[b].emplace(
                            bucket_exec_[b]->run(plan, &bucket_stats));
                        add_stats(shard_stats[s], bucket_stats);
                      }
                    }
                  });

  MVD_TRACE_SPAN("exec.exchange", "gather");
  const auto [b_first, b_last] = db_->bucket_range(s_begin);
  (void)b_last;
  Table out(results[b_first]->schema(), results[b_first]->blocking_factor());
  double gather_blocks = 0;
  for (std::size_t b = 0; b < ShardedDatabase::kBuckets; ++b) {
    if (!results[b].has_value()) continue;
    gather_blocks += results[b]->blocks();
    for (const Tuple& row : results[b]->rows()) out.append(row);
  }
  record_gather(db_->exchange_log(), static_cast<double>(out.row_count()),
                gather_blocks);
  if (stats != nullptr) {
    stats->rows_exchanged += static_cast<double>(out.row_count());
    stats->blocks_exchanged += gather_blocks;
  }
  merge_shard_stats(stats, std::move(shard_stats));
  return out;
}

std::vector<Table> ShardedExecutor::run_partitioned(const PlanPtr& plan,
                                                    ExecStats* stats) const {
  refresh_executors();
  const ShardPlanAnalysis a = analyze_shard_plan(plan, *db_);
  if (a.refs != 1 || a.spine_aggregate != nullptr) {
    throw ExecError("run_partitioned needs exactly one partitioned leaf and "
                    "no aggregate on its spine");
  }
  std::vector<std::optional<Table>> results(ShardedDatabase::kBuckets);
  std::vector<ExecStats> shard_stats(db_->shards());
  parallel_shards(db_->shards(), threads_,
                  [&](std::size_t, std::size_t sb, std::size_t se) {
                    for (std::size_t s = sb; s < se; ++s) {
                      const auto [b0, b1] = db_->bucket_range(s);
                      for (std::size_t b = b0; b < b1; ++b) {
                        // Fresh stats per bucket run: Executor::run
                        // assigns rows_out by label, so sharing a slot
                        // would keep only the last bucket's counts.
                        ExecStats bucket_stats;
                        results[b].emplace(
                            bucket_exec_[b]->run(plan, &bucket_stats));
                        add_stats(shard_stats[s], bucket_stats);
                      }
                    }
                  });
  merge_shard_stats(stats, std::move(shard_stats));
  std::vector<Table> out;
  out.reserve(ShardedDatabase::kBuckets);
  for (std::size_t b = 0; b < ShardedDatabase::kBuckets; ++b) {
    out.push_back(std::move(*results[b]));
  }
  return out;
}

Table ShardedExecutor::run_spine_aggregate(const PlanPtr& plan,
                                           const ShardPlanAnalysis& a,
                                           ExecStats* stats) const {
  const AggregateOp& agg = *a.spine_aggregate;
  const PlanPtr& child = agg.children()[0];
  const Schema& is = child->output_schema();

  std::vector<std::size_t> group_idx;
  for (const std::string& g : agg.group_by()) {
    group_idx.push_back(is.index_of(g));
  }
  std::vector<std::size_t> agg_idx;  // SIZE_MAX for COUNT(*)
  for (const AggSpec& spec : agg.aggregates()) {
    agg_idx.push_back(spec.column.empty() ? SIZE_MAX
                                          : is.index_of(spec.column));
  }

  // Per-bucket partial: packed-key hash aggregation in first-seen order —
  // exactly the engines' aggregation, restricted to this bucket's rows.
  struct Partial {
    std::vector<Tuple> keys;
    std::vector<std::vector<Accumulator>> accs;
    double bf = 10.0;
  };
  std::vector<std::optional<Partial>> partials(ShardedDatabase::kBuckets);
  std::vector<ExecStats> shard_stats(db_->shards());
  const auto [s_begin, s_end] = shard_span(a);
  parallel_shards(
      s_end - s_begin, threads_,
      [&](std::size_t, std::size_t wb, std::size_t we) {
        for (std::size_t s = s_begin + wb; s < s_begin + we; ++s) {
          const auto [b0, b1] = db_->bucket_range(s);
          for (std::size_t b = b0; b < b1; ++b) {
            ExecStats bucket_stats;
            const Table in = bucket_exec_[b]->run(child, &bucket_stats);
            add_stats(shard_stats[s], bucket_stats);
            shard_stats[s].rows_scanned +=
                static_cast<double>(in.row_count());
            shard_stats[s].batches += 1;
            Partial p;
            p.bf = in.blocking_factor();
            std::unordered_map<std::string, std::size_t> index;
            std::string key;
            for (const Tuple& t : in.rows()) {
              key.clear();
              for (std::size_t gi : group_idx) append_packed_key(key, t[gi]);
              auto [it, inserted] = index.try_emplace(key, p.keys.size());
              if (inserted) {
                Tuple kv;
                kv.reserve(group_idx.size());
                for (std::size_t gi : group_idx) kv.push_back(t[gi]);
                p.keys.push_back(std::move(kv));
                p.accs.emplace_back(agg.aggregates().size());
              }
              std::vector<Accumulator>& accs = p.accs[it->second];
              for (std::size_t j = 0; j < agg_idx.size(); ++j) {
                accs[j].feed(agg_idx[j] == SIZE_MAX ? Value::int64(1)
                                                    : t[agg_idx[j]]);
              }
            }
            shard_stats[s].rows_out["partial(" + agg.label() + ")"] +=
                static_cast<double>(p.keys.size());
            partials[b].emplace(std::move(p));
          }
        }
      });

  // Final merge on the calling thread, buckets in ascending order: group
  // order is first-seen across the bucket-order concatenation, partials
  // fold via Accumulator::merge — deterministic at any (shards, threads).
  MVD_TRACE_SPAN("exec.exchange", "gather");
  std::vector<Tuple> keys;
  std::vector<std::vector<Accumulator>> accs;
  std::unordered_map<std::string, std::size_t> index;
  double partial_rows = 0;
  double partial_blocks = 0;
  double bf = 10.0;
  bool bf_set = false;
  std::string key;
  for (std::size_t b = 0; b < ShardedDatabase::kBuckets; ++b) {
    if (!partials[b].has_value()) continue;
    Partial& p = *partials[b];
    if (!bf_set) {
      bf = p.bf;
      bf_set = true;
    }
    partial_rows += static_cast<double>(p.keys.size());
    partial_blocks += std::ceil(static_cast<double>(p.keys.size()) / p.bf);
    for (std::size_t g = 0; g < p.keys.size(); ++g) {
      key.clear();
      for (const Value& v : p.keys[g]) append_packed_key(key, v);
      auto [it, inserted] = index.try_emplace(key, keys.size());
      if (inserted) {
        keys.push_back(std::move(p.keys[g]));
        accs.emplace_back(agg.aggregates().size());
      }
      std::vector<Accumulator>& into = accs[it->second];
      for (std::size_t j = 0; j < into.size(); ++j) {
        into[j].merge(p.accs[g][j]);
      }
    }
  }
  // SQL semantics: a global aggregate over an empty input yields one row.
  if (keys.empty() && agg.group_by().empty()) {
    keys.emplace_back();
    accs.emplace_back(agg.aggregates().size());
  }

  const Schema& os = agg.output_schema();
  Table merged(os, bf);
  for (std::size_t g = 0; g < keys.size(); ++g) {
    Tuple row = std::move(keys[g]);
    for (std::size_t j = 0; j < accs[g].size(); ++j) {
      row.push_back(accs[g][j].result(agg.aggregates()[j].fn,
                                      os.at(group_idx.size() + j).type));
    }
    merged.append(std::move(row));
  }

  record_gather(db_->exchange_log(), partial_rows, partial_blocks);
  if (stats != nullptr) {
    stats->rows_exchanged += partial_rows;
    stats->blocks_exchanged += partial_blocks;
    stats->rows_out[agg.label()] += static_cast<double>(merged.row_count());
  }
  merge_shard_stats(stats, std::move(shard_stats));

  if (a.spine_aggregate == plan.get()) return merged;

  // The aggregate was interior: run the plan's remainder over the merged
  // partials at the coordinator (a fresh executor — the temp table's
  // lifetime must not outlive this call in any column cache).
  const std::string tmp = "__shard_partial";
  db_->coordinator().put_table(tmp, std::move(merged));
  std::optional<Table> out;
  try {
    const PlanPtr remainder = replace_subtree(
        plan, a.spine_aggregate, make_named_scan(tmp, agg.output_schema()));
    const Executor exec(db_->coordinator(), mode_, threads_);
    out.emplace(exec.run(remainder, stats));
  } catch (...) {
    db_->coordinator().drop_table(tmp);
    throw;
  }
  db_->coordinator().drop_table(tmp);
  return std::move(*out);
}

}  // namespace mvd
