#include "src/exec/delta.hpp"

#include <unordered_map>
#include <utility>

#include "src/algebra/eval.hpp"
#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/exec/exec_internal.hpp"

namespace mvd {

namespace {

/// Signed sink over an output delta: +1 rows land in the insert bag,
/// -1 rows in the delete bag, after the residual predicate (if any).
struct DeltaSink {
  DeltaTable* out;
  const CompiledExpr* residual;  // over the concatenated join schema

  void emit(int sign, const Tuple& left, const Tuple& right) {
    Tuple joined = left;
    joined.insert(joined.end(), right.begin(), right.end());
    if (residual != nullptr && !residual->matches(joined)) return;
    if (sign > 0) {
      out->add_insert(std::move(joined));
    } else {
      out->add_delete(std::move(joined));
    }
  }
};

/// One hash-join term: build on the (small) signed delta, probe with the
/// full side. `delta_on_left` says which side of the output the delta's
/// tuples occupy; `term_sign` multiplies the delta's own signs.
void join_delta_with_full(const DeltaTable& delta, const Table& full,
                          const std::vector<std::size_t>& delta_idx,
                          const std::vector<std::size_t>& full_idx,
                          bool delta_on_left, int term_sign, DeltaSink& sink) {
  // Build: (hash, sign, row index into the signed bag pair).
  std::unordered_multimap<std::size_t, std::pair<int, const Tuple*>> table;
  table.reserve(delta.row_count());
  for (const Tuple& t : delta.inserts().rows()) {
    table.emplace(tuple_hash_key(t, delta_idx), std::make_pair(1, &t));
  }
  for (const Tuple& t : delta.deletes().rows()) {
    table.emplace(tuple_hash_key(t, delta_idx), std::make_pair(-1, &t));
  }
  for (const Tuple& p : full.rows()) {
    auto [lo, hi] = table.equal_range(tuple_hash_key(p, full_idx));
    for (auto it = lo; it != hi; ++it) {
      const Tuple& d = *it->second.second;
      if (!tuple_keys_equal(d, delta_idx, p, full_idx)) continue;
      const int sign = term_sign * it->second.first;
      if (delta_on_left) {
        sink.emit(sign, d, p);
      } else {
        sink.emit(sign, p, d);
      }
    }
  }
}

/// The ΔL ⋈ ΔR correction term: signed product with `term_sign` (the
/// algebra subtracts it, so callers pass -1).
void join_delta_with_delta(const DeltaTable& l, const DeltaTable& r,
                           const std::vector<std::size_t>& l_idx,
                           const std::vector<std::size_t>& r_idx,
                           int term_sign, DeltaSink& sink) {
  std::unordered_multimap<std::size_t, std::pair<int, const Tuple*>> table;
  table.reserve(l.row_count());
  for (const Tuple& t : l.inserts().rows()) {
    table.emplace(tuple_hash_key(t, l_idx), std::make_pair(1, &t));
  }
  for (const Tuple& t : l.deletes().rows()) {
    table.emplace(tuple_hash_key(t, l_idx), std::make_pair(-1, &t));
  }
  auto probe = [&](const Tuple& p, int p_sign) {
    auto [lo, hi] = table.equal_range(tuple_hash_key(p, r_idx));
    for (auto it = lo; it != hi; ++it) {
      const Tuple& d = *it->second.second;
      if (!tuple_keys_equal(d, l_idx, p, r_idx)) continue;
      sink.emit(term_sign * it->second.first * p_sign, d, p);
    }
  };
  for (const Tuple& t : r.inserts().rows()) probe(t, 1);
  for (const Tuple& t : r.deletes().rows()) probe(t, -1);
}

}  // namespace

DeltaPropagator::DeltaPropagator(const Database& db, const DeltaSet& deltas,
                                 ExecMode mode, std::size_t threads)
    : deltas_(&deltas), exec_(db, mode, threads) {}

std::optional<DeltaTable> DeltaPropagator::propagate(const PlanPtr& plan,
                                                     ExecStats* stats) {
  MVD_ASSERT(plan != nullptr);
  return run(plan, stats);
}

bool DeltaPropagator::touches(const PlanPtr& plan) const {
  if (plan->kind() == OpKind::kScan) {
    const auto it = deltas_->find(static_cast<const ScanOp&>(*plan).relation());
    return it != deltas_->end() && !it->second.empty();
  }
  for (const PlanPtr& child : plan->children()) {
    if (touches(child)) return true;
  }
  return false;
}

const Table& DeltaPropagator::full(const PlanPtr& plan, ExecStats* stats) {
  if (const auto it = full_memo_.find(plan.get()); it != full_memo_.end()) {
    return it->second;
  }
  return full_memo_.emplace(plan.get(), exec_.run(plan, stats)).first->second;
}

std::optional<DeltaTable> DeltaPropagator::run(const PlanPtr& plan,
                                               ExecStats* stats) {
  if (const auto it = delta_memo_.find(plan.get()); it != delta_memo_.end()) {
    return it->second;
  }
  std::optional<DeltaTable> result;
  switch (plan->kind()) {
    case OpKind::kScan:
      result = delta_scan(static_cast<const ScanOp&>(*plan), stats);
      break;
    case OpKind::kSelect: {
      const auto in = run(plan->children()[0], stats);
      if (!in.has_value()) break;
      result = delta_select(static_cast<const SelectOp&>(*plan), *in, stats);
      break;
    }
    case OpKind::kProject: {
      const auto in = run(plan->children()[0], stats);
      if (!in.has_value()) break;
      result = delta_project(static_cast<const ProjectOp&>(*plan), *in);
      break;
    }
    case OpKind::kJoin: {
      const auto l = run(plan->children()[0], stats);
      const auto r = run(plan->children()[1], stats);
      if (!l.has_value() || !r.has_value()) break;
      result = delta_join(static_cast<const JoinOp&>(*plan), l, r, stats);
      break;
    }
    case OpKind::kAggregate:
      // Not covered by the delta algebra here; the maintenance driver
      // applies grouped deltas to stored aggregate views itself (or
      // recomputes). Interior aggregates force the recompute fallback.
      break;
  }
  if (result.has_value()) delta_memo_.emplace(plan.get(), *result);
  return result;
}

DeltaTable DeltaPropagator::delta_scan(const ScanOp& op,
                                       ExecStats* stats) const {
  const auto it = deltas_->find(op.relation());
  if (it == deltas_->end() || it->second.empty()) {
    return DeltaTable(op.output_schema());
  }
  DeltaTable delta = it->second.compacted();
  if (delta.schema().size() != op.output_schema().size()) {
    throw ExecError("delta of '" + op.relation() +
                    "' does not match the scan schema");
  }
  if (!(delta.schema() == op.output_schema())) {
    delta = DeltaTable::rebind(op.output_schema(), delta);
  }
  if (stats != nullptr) {
    stats->blocks_read += delta.blocks();
    stats->rows_scanned += static_cast<double>(delta.row_count());
    stats->batches += 1;
  }
  return delta;
}

DeltaTable DeltaPropagator::delta_select(const SelectOp& op,
                                         const DeltaTable& in,
                                         ExecStats* stats) const {
  if (stats != nullptr) {
    stats->blocks_read += in.blocks();
    stats->rows_scanned += static_cast<double>(in.row_count());
    stats->batches += 1;
  }
  const CompiledExpr pred(op.predicate(), in.schema());
  DeltaTable out(in.schema(), in.blocking_factor());
  for (const Tuple& t : in.inserts().rows()) {
    if (pred.matches(t)) out.add_insert(t);
  }
  for (const Tuple& t : in.deletes().rows()) {
    if (pred.matches(t)) out.add_delete(t);
  }
  return out;
}

DeltaTable DeltaPropagator::delta_project(const ProjectOp& op,
                                          const DeltaTable& in) const {
  std::vector<std::size_t> indices;
  indices.reserve(op.columns().size());
  for (const std::string& c : op.columns()) {
    indices.push_back(in.schema().index_of(c));
  }
  DeltaTable out(op.output_schema(), in.blocking_factor());
  auto project = [&](const Tuple& t) {
    Tuple projected;
    projected.reserve(indices.size());
    for (std::size_t i : indices) projected.push_back(t[i]);
    return projected;
  };
  for (const Tuple& t : in.inserts().rows()) out.add_insert(project(t));
  for (const Tuple& t : in.deletes().rows()) out.add_delete(project(t));
  return out;
}

std::optional<DeltaTable> DeltaPropagator::delta_join(
    const JoinOp& op, const std::optional<DeltaTable>& l,
    const std::optional<DeltaTable>& r, ExecStats* stats) {
  const PlanPtr& lp = op.left();
  const PlanPtr& rp = op.right();
  const Schema& ls = lp->output_schema();
  const Schema& rs = rp->output_schema();
  DeltaTable out(op.output_schema(), l->blocking_factor());
  if (l->empty() && r->empty()) return out;

  const JoinSplit split = split_join_predicate(op, ls, rs);
  if (split.equi.empty()) return std::nullopt;
  std::vector<std::size_t> l_idx, r_idx;
  for (const auto& [li, ri] : split.equi) {
    l_idx.push_back(li);
    r_idx.push_back(ri);
  }
  std::unique_ptr<CompiledExpr> residual;
  if (!split.residual.empty()) {
    std::vector<ExprPtr> preds = split.residual;
    residual = std::make_unique<CompiledExpr>(conj(std::move(preds)),
                                              Schema::concat(ls, rs));
  }
  DeltaSink sink{&out, residual.get()};

  // Δ(L ⋈ R) = ΔL ⋈ R' + L' ⋈ ΔR − ΔL ⋈ ΔR, primed = post-update.
  if (!l->empty()) {
    const Table& rfull = full(rp, stats);
    if (stats != nullptr) {
      stats->blocks_read += l->blocks() + rfull.blocks();
      stats->rows_scanned +=
          static_cast<double>(l->row_count() + rfull.row_count());
      stats->batches += 2;
    }
    join_delta_with_full(*l, rfull, l_idx, r_idx, /*delta_on_left=*/true,
                         /*term_sign=*/1, sink);
  }
  if (!r->empty()) {
    const Table& lfull = full(lp, stats);
    if (stats != nullptr) {
      stats->blocks_read += r->blocks() + lfull.blocks();
      stats->rows_scanned +=
          static_cast<double>(r->row_count() + lfull.row_count());
      stats->batches += 2;
    }
    join_delta_with_full(*r, lfull, r_idx, l_idx, /*delta_on_left=*/false,
                         /*term_sign=*/1, sink);
  }
  if (!l->empty() && !r->empty()) {
    if (stats != nullptr) {
      stats->blocks_read += l->blocks() + r->blocks();
      stats->batches += 2;
    }
    join_delta_with_delta(*l, *r, l_idx, r_idx, /*term_sign=*/-1, sink);
  }
  return out;
}

}  // namespace mvd
