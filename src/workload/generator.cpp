#include "src/workload/generator.hpp"

#include <algorithm>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/common/strings.hpp"

namespace mvd {

namespace {

std::string dim_name(std::size_t i) { return "Dim" + std::to_string(i); }

ColumnStats with_distinct(double d) {
  ColumnStats cs;
  cs.distinct = d;
  return cs;
}

ColumnStats with_range(double d, double lo, double hi) {
  ColumnStats cs;
  cs.distinct = d;
  cs.min_value = lo;
  cs.max_value = hi;
  return cs;
}

}  // namespace

Catalog make_star_catalog(const StarSchemaOptions& options) {
  if (options.dimensions == 0) throw CatalogError("star needs >= 1 dimension");
  Catalog catalog(options.blocking_factor);

  for (std::size_t i = 0; i < options.dimensions; ++i) {
    Schema schema({{"id", ValueType::kInt64, ""},
                   {"category", ValueType::kString, ""},
                   {"label", ValueType::kString, ""},
                   {"weight", ValueType::kInt64, ""}});
    RelationStats stats;
    stats.rows = static_cast<double>(options.dimension_rows);
    stats.columns["id"] = with_distinct(stats.rows);
    stats.columns["category"] =
        with_distinct(static_cast<double>(options.categories));
    stats.columns["label"] = with_distinct(stats.rows);
    stats.columns["weight"] = with_range(100, 1, 100);
    catalog.add_relation(dim_name(i), std::move(schema), std::move(stats),
                         options.update_frequency);
  }

  std::vector<Attribute> fact_attrs{{"fid", ValueType::kInt64, ""}};
  for (std::size_t i = 0; i < options.dimensions; ++i) {
    fact_attrs.push_back({"d" + std::to_string(i), ValueType::kInt64, ""});
  }
  fact_attrs.push_back({"measure", ValueType::kInt64, ""});
  fact_attrs.push_back({"amount", ValueType::kDouble, ""});
  RelationStats stats;
  stats.rows = static_cast<double>(options.fact_rows);
  stats.columns["fid"] = with_distinct(stats.rows);
  for (std::size_t i = 0; i < options.dimensions; ++i) {
    stats.columns["d" + std::to_string(i)] =
        with_distinct(static_cast<double>(options.dimension_rows));
  }
  stats.columns["measure"] = with_range(
      static_cast<double>(options.measure_range), 1,
      static_cast<double>(options.measure_range));
  stats.columns["amount"] = with_range(stats.rows, 0, 1'000);
  catalog.add_relation("Fact", Schema(std::move(fact_attrs)), std::move(stats),
                       options.update_frequency);
  return catalog;
}

std::vector<QuerySpec> generate_star_queries(const Catalog& catalog,
                                             const StarSchemaOptions& schema,
                                             const StarQueryOptions& options) {
  if (options.min_dimensions == 0 ||
      options.max_dimensions < options.min_dimensions ||
      options.max_dimensions > schema.dimensions) {
    throw PlanError("invalid dimension span for star query generation");
  }
  Rng rng(options.seed);
  const ZipfSampler zipf(std::max<std::size_t>(options.count, 1),
                         options.zipf_skew);
  // fq(rank) proportional to the zipf pmf, scaled so rank 0 gets
  // top_frequency.
  const double scale = options.top_frequency / zipf.pmf(0);

  std::vector<QuerySpec> queries;
  for (std::size_t qi = 0; qi < options.count; ++qi) {
    const std::size_t ndims = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(options.min_dimensions),
        static_cast<std::int64_t>(options.max_dimensions)));
    std::vector<std::size_t> dims(schema.dimensions);
    for (std::size_t i = 0; i < dims.size(); ++i) dims[i] = i;
    rng.shuffle(dims);
    dims.resize(ndims);
    std::sort(dims.begin(), dims.end());

    std::vector<std::string> relations{"Fact"};
    std::vector<ExprPtr> where;
    std::vector<std::string> projection{"Fact.measure"};
    for (std::size_t d : dims) {
      const std::string rel = dim_name(d);
      relations.push_back(rel);
      where.push_back(eq(col("Fact.d" + std::to_string(d)), col(rel + ".id")));
      projection.push_back(rel + ".label");
      if (rng.chance(options.selection_probability)) {
        const std::int64_t cat = rng.uniform_int(
            0, static_cast<std::int64_t>(schema.categories) - 1);
        where.push_back(eq(col(rel + ".category"),
                           lit_str("cat_" + std::to_string(cat))));
      }
    }
    if (rng.chance(options.selection_probability)) {
      const std::int64_t cut = rng.uniform_int(
          1, static_cast<std::int64_t>(schema.measure_range));
      where.push_back(gt(col("Fact.measure"), lit_i64(cut)));
    }

    const double fq = scale * zipf.pmf(qi);
    if (rng.chance(options.aggregation_probability)) {
      // Rollup: group on the first chosen dimension's category.
      const std::string group_col = dim_name(dims.front()) + ".category";
      std::vector<AggSpec> aggs{AggSpec{AggFn::kSum, "Fact.measure", ""},
                                AggSpec{AggFn::kCount, "", ""}};
      queries.push_back(QuerySpec::bind(
          catalog, "Q" + std::to_string(qi + 1), fq, std::move(relations),
          conj(where), {group_col}, {group_col}, std::move(aggs)));
    } else {
      queries.push_back(QuerySpec::bind(catalog,
                                        "Q" + std::to_string(qi + 1), fq,
                                        std::move(relations), conj(where),
                                        std::move(projection)));
    }
  }
  return queries;
}

Database populate_star_database(const StarSchemaOptions& options,
                                std::uint64_t seed) {
  Rng rng(seed);
  Database db;
  const Catalog catalog = make_star_catalog(options);

  for (std::size_t i = 0; i < options.dimensions; ++i) {
    Table t(catalog.schema(dim_name(i)), options.blocking_factor);
    for (std::size_t r = 0; r < options.dimension_rows; ++r) {
      t.append({Value::int64(static_cast<std::int64_t>(r)),
                Value::string("cat_" + std::to_string(rng.uniform_int(
                                  0, static_cast<std::int64_t>(
                                         options.categories) - 1))),
                Value::string("label_" + std::to_string(i) + "_" +
                              std::to_string(r)),
                Value::int64(rng.uniform_int(1, 100))});
    }
    db.add_table(dim_name(i), std::move(t));
  }

  Table fact(catalog.schema("Fact"), options.blocking_factor);
  for (std::size_t r = 0; r < options.fact_rows; ++r) {
    Tuple t{Value::int64(static_cast<std::int64_t>(r))};
    for (std::size_t i = 0; i < options.dimensions; ++i) {
      t.push_back(Value::int64(rng.uniform_int(
          0, static_cast<std::int64_t>(options.dimension_rows) - 1)));
    }
    t.push_back(Value::int64(rng.uniform_int(
        1, static_cast<std::int64_t>(options.measure_range))));
    t.push_back(Value::real(rng.uniform(0, 1'000)));
    fact.append(std::move(t));
  }
  db.add_table("Fact", std::move(fact));
  return db;
}

Catalog catalog_from_database(const Database& db, double blocking_factor,
                              double update_frequency) {
  Catalog catalog(blocking_factor);
  for (const std::string& name : db.table_names()) {
    const Table& t = db.table(name);
    // Strip qualification: catalog schemas use bare sources.
    std::vector<Attribute> attrs;
    for (Attribute a : t.schema().attributes()) {
      a.source.clear();
      attrs.push_back(std::move(a));
    }
    catalog.add_relation(name, Schema(std::move(attrs)), t.compute_stats(),
                         update_frequency);
  }
  return catalog;
}

namespace {
std::string sub_name(std::size_t i) { return "Sub" + std::to_string(i); }
}  // namespace

Catalog make_snowflake_catalog(const SnowflakeSchemaOptions& options) {
  if (options.dimensions == 0) {
    throw CatalogError("snowflake needs >= 1 dimension");
  }
  Catalog catalog(options.blocking_factor);

  for (std::size_t i = 0; i < options.dimensions; ++i) {
    {
      Schema schema({{"id", ValueType::kInt64, ""},
                     {"region", ValueType::kString, ""}});
      RelationStats stats;
      stats.rows = static_cast<double>(options.subdimension_rows);
      stats.columns["id"] = with_distinct(stats.rows);
      stats.columns["region"] =
          with_distinct(static_cast<double>(options.categories));
      catalog.add_relation(sub_name(i), std::move(schema), std::move(stats),
                           options.update_frequency);
    }
    {
      Schema schema({{"id", ValueType::kInt64, ""},
                     {"sub_id", ValueType::kInt64, ""},
                     {"label", ValueType::kString, ""}});
      RelationStats stats;
      stats.rows = static_cast<double>(options.dimension_rows);
      stats.columns["id"] = with_distinct(stats.rows);
      stats.columns["sub_id"] =
          with_distinct(static_cast<double>(options.subdimension_rows));
      stats.columns["label"] = with_distinct(stats.rows);
      catalog.add_relation(dim_name(i), std::move(schema), std::move(stats),
                           options.update_frequency);
    }
  }

  std::vector<Attribute> fact_attrs{{"fid", ValueType::kInt64, ""}};
  for (std::size_t i = 0; i < options.dimensions; ++i) {
    fact_attrs.push_back({"d" + std::to_string(i), ValueType::kInt64, ""});
  }
  fact_attrs.push_back({"measure", ValueType::kInt64, ""});
  RelationStats stats;
  stats.rows = static_cast<double>(options.fact_rows);
  stats.columns["fid"] = with_distinct(stats.rows);
  for (std::size_t i = 0; i < options.dimensions; ++i) {
    stats.columns["d" + std::to_string(i)] =
        with_distinct(static_cast<double>(options.dimension_rows));
  }
  stats.columns["measure"] = with_range(1'000, 1, 1'000);
  catalog.add_relation("Fact", Schema(std::move(fact_attrs)), std::move(stats),
                       options.update_frequency);
  return catalog;
}

std::vector<QuerySpec> generate_snowflake_queries(
    const Catalog& catalog, const SnowflakeSchemaOptions& schema,
    const StarQueryOptions& options) {
  if (options.min_dimensions == 0 ||
      options.max_dimensions < options.min_dimensions ||
      options.max_dimensions > schema.dimensions) {
    throw PlanError("invalid dimension span for snowflake query generation");
  }
  Rng rng(options.seed);
  const ZipfSampler zipf(std::max<std::size_t>(options.count, 1),
                         options.zipf_skew);
  const double scale = options.top_frequency / zipf.pmf(0);

  std::vector<QuerySpec> queries;
  for (std::size_t qi = 0; qi < options.count; ++qi) {
    const std::size_t ndims = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(options.min_dimensions),
        static_cast<std::int64_t>(options.max_dimensions)));
    std::vector<std::size_t> dims(schema.dimensions);
    for (std::size_t i = 0; i < dims.size(); ++i) dims[i] = i;
    rng.shuffle(dims);
    dims.resize(ndims);
    std::sort(dims.begin(), dims.end());

    std::vector<std::string> relations{"Fact"};
    std::vector<ExprPtr> where;
    std::vector<std::string> projection{"Fact.measure"};
    for (std::size_t d : dims) {
      const std::string dim = dim_name(d);
      const std::string sub = sub_name(d);
      relations.push_back(dim);
      relations.push_back(sub);
      where.push_back(eq(col("Fact.d" + std::to_string(d)), col(dim + ".id")));
      where.push_back(eq(col(dim + ".sub_id"), col(sub + ".id")));
      projection.push_back(dim + ".label");
      if (rng.chance(options.selection_probability)) {
        const std::int64_t region = rng.uniform_int(
            0, static_cast<std::int64_t>(schema.categories) - 1);
        where.push_back(eq(col(sub + ".region"),
                           lit_str("region_" + std::to_string(region))));
      }
    }
    const double fq = scale * zipf.pmf(qi);
    queries.push_back(QuerySpec::bind(catalog, "Q" + std::to_string(qi + 1),
                                      fq, std::move(relations), conj(where),
                                      std::move(projection)));
  }
  return queries;
}

namespace {
std::string chain_name(std::size_t i) { return "R" + std::to_string(i); }
}  // namespace

Catalog make_chain_catalog(const ChainSchemaOptions& options) {
  if (options.length < 2) throw CatalogError("chain needs >= 2 relations");
  Catalog catalog(options.blocking_factor);
  for (std::size_t i = 0; i < options.length; ++i) {
    std::vector<Attribute> attrs;
    if (i > 0) attrs.push_back({"k" + std::to_string(i - 1), ValueType::kInt64, ""});
    attrs.push_back({"k" + std::to_string(i), ValueType::kInt64, ""});
    attrs.push_back({"v", ValueType::kInt64, ""});
    RelationStats stats;
    stats.rows = static_cast<double>(options.rows) *
                 (1.0 + 0.5 * static_cast<double>(i % 3));
    for (const Attribute& a : attrs) {
      if (a.name == "v") {
        stats.columns["v"] = with_range(1'000, 1, 1'000);
      } else {
        stats.columns[a.name] = with_distinct(stats.rows / 2);
      }
    }
    catalog.add_relation(chain_name(i), Schema(std::move(attrs)),
                         std::move(stats), options.update_frequency);
  }
  return catalog;
}

Database populate_chain_database(const ChainSchemaOptions& options,
                                 std::uint64_t seed) {
  Rng rng(seed);
  Database db;
  const Catalog catalog = make_chain_catalog(options);
  for (std::size_t i = 0; i < options.length; ++i) {
    const std::size_t rows = static_cast<std::size_t>(
        static_cast<double>(options.rows) *
        (1.0 + 0.5 * static_cast<double>(i % 3)));
    // Key columns draw uniformly from rows/2 values, matching the
    // catalog's distinct counts (selectivity 2/rows per equi-join key).
    const std::int64_t key_max =
        std::max<std::int64_t>(static_cast<std::int64_t>(rows / 2) - 1, 0);
    Table t(catalog.schema(chain_name(i)), options.blocking_factor);
    for (std::size_t r = 0; r < rows; ++r) {
      Tuple row;
      if (i > 0) row.push_back(Value::int64(rng.uniform_int(0, key_max)));
      row.push_back(Value::int64(rng.uniform_int(0, key_max)));
      row.push_back(Value::int64(rng.uniform_int(1, 1'000)));
      t.append(std::move(row));
    }
    db.add_table(chain_name(i), std::move(t));
  }
  return db;
}

std::vector<QuerySpec> generate_chain_queries(const Catalog& catalog,
                                              const ChainSchemaOptions& schema,
                                              const ChainQueryOptions& options) {
  if (options.min_span < 2 || options.max_span < options.min_span ||
      options.max_span > schema.length) {
    throw PlanError("invalid span for chain query generation");
  }
  Rng rng(options.seed);
  const ZipfSampler zipf(std::max<std::size_t>(options.count, 1),
                         options.zipf_skew);
  const double scale = options.top_frequency / zipf.pmf(0);

  std::vector<QuerySpec> queries;
  for (std::size_t qi = 0; qi < options.count; ++qi) {
    const std::size_t span = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(options.min_span),
        static_cast<std::int64_t>(options.max_span)));
    const std::size_t start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(schema.length - span)));

    std::vector<std::string> relations;
    std::vector<ExprPtr> where;
    for (std::size_t i = start; i < start + span; ++i) {
      relations.push_back(chain_name(i));
      if (i > start) {
        const std::string key = "k" + std::to_string(i - 1);
        where.push_back(
            eq(col(chain_name(i - 1) + "." + key), col(chain_name(i) + "." + key)));
      }
    }
    // A value selection on one end relation half the time.
    if (rng.chance(0.5)) {
      const std::int64_t cut = rng.uniform_int(1, 1'000);
      where.push_back(gt(col(relations.front() + ".v"), lit_i64(cut)));
    }
    std::vector<std::string> projection{relations.front() + ".v",
                                        relations.back() + ".v"};
    const double fq = scale * zipf.pmf(qi);
    queries.push_back(QuerySpec::bind(catalog, "Q" + std::to_string(qi + 1),
                                      fq, std::move(relations), conj(where),
                                      std::move(projection)));
  }
  return queries;
}

}  // namespace mvd
