#include "src/workload/paper_example.hpp"

#include "src/common/random.hpp"
#include "src/sql/parser.hpp"
#include "src/storage/value.hpp"

namespace mvd {

CostModelConfig paper_cost_config() {
  CostModelConfig config;
  config.equality_select_half_scan = true;
  config.use_join_overrides = true;
  return config;
}

namespace {

ColumnStats distinct_of(double d) {
  ColumnStats cs;
  cs.distinct = d;
  return cs;
}

ColumnStats uniform_range(double d, double lo, double hi) {
  ColumnStats cs;
  cs.distinct = d;
  cs.min_value = lo;
  cs.max_value = hi;
  return cs;
}

}  // namespace

Catalog make_paper_catalog() {
  Catalog catalog(/*blocking_factor=*/10.0);

  {
    Schema schema({{"Pid", ValueType::kInt64, ""},
                   {"name", ValueType::kString, ""},
                   {"Did", ValueType::kInt64, ""}});
    RelationStats stats;
    stats.rows = 30'000;
    stats.blocks = 3'000;
    stats.columns["Pid"] = distinct_of(30'000);
    stats.columns["name"] = distinct_of(30'000);
    stats.columns["Did"] = distinct_of(5'000);
    catalog.add_relation("Product", std::move(schema), std::move(stats));
  }
  {
    Schema schema({{"Did", ValueType::kInt64, ""},
                   {"name", ValueType::kString, ""},
                   {"city", ValueType::kString, ""}});
    RelationStats stats;
    stats.rows = 5'000;
    stats.blocks = 500;
    stats.columns["Did"] = distinct_of(5'000);
    stats.columns["name"] = distinct_of(5'000);
    stats.columns["city"] = distinct_of(50);  // s = 0.02 for city = 'LA'
    catalog.add_relation("Division", std::move(schema), std::move(stats));
  }
  {
    Schema schema({{"Pid", ValueType::kInt64, ""},
                   {"Cid", ValueType::kInt64, ""},
                   {"quantity", ValueType::kInt64, ""},
                   {"date", ValueType::kDate, ""}});
    RelationStats stats;
    stats.rows = 50'000;
    stats.blocks = 6'000;
    stats.columns["Pid"] = distinct_of(30'000);
    stats.columns["Cid"] = distinct_of(20'000);
    // quantity uniform on [1, 200]: quantity > 100 has s ≈ 0.5.
    stats.columns["quantity"] = uniform_range(200, 1, 200);
    // date spans 1996: date > 1996-07-01 has s ≈ 0.5.
    stats.columns["date"] = uniform_range(
        365, static_cast<double>(Value::days_from_civil(1996, 1, 1)),
        static_cast<double>(Value::days_from_civil(1996, 12, 31)));
    catalog.add_relation("Order", std::move(schema), std::move(stats));
  }
  {
    Schema schema({{"Cid", ValueType::kInt64, ""},
                   {"name", ValueType::kString, ""},
                   {"city", ValueType::kString, ""}});
    RelationStats stats;
    stats.rows = 20'000;
    stats.blocks = 2'000;
    stats.columns["Cid"] = distinct_of(20'000);
    stats.columns["name"] = distinct_of(20'000);
    stats.columns["city"] = distinct_of(100);
    catalog.add_relation("Customer", std::move(schema), std::move(stats));
  }
  {
    Schema schema({{"Tid", ValueType::kInt64, ""},
                   {"name", ValueType::kString, ""},
                   {"Pid", ValueType::kInt64, ""},
                   {"supplier", ValueType::kString, ""}});
    RelationStats stats;
    stats.rows = 80'000;
    stats.blocks = 10'000;
    stats.columns["Tid"] = distinct_of(80'000);
    stats.columns["name"] = distinct_of(80'000);
    stats.columns["Pid"] = distinct_of(30'000);
    stats.columns["supplier"] = distinct_of(1'000);
    catalog.add_relation("Part", std::move(schema), std::move(stats));
  }

  // Table 1's pinned intermediate sizes.
  catalog.add_join_size_override({"Product", "Division"},
                                 {30'000, 5'000});
  catalog.add_join_size_override({"Product", "Division", "Part"},
                                 {80'000, 20'000});
  catalog.add_join_size_override({"Order", "Customer"}, {25'000, 5'000});
  catalog.add_join_size_override({"Product", "Division", "Order", "Customer"},
                                 {25'000, 5'000});
  return catalog;
}

PaperExample make_paper_example() {
  PaperExample ex{make_paper_catalog(), {}};
  const Catalog& c = ex.catalog;
  ex.queries.push_back(parse_and_bind(
      c, "Q1", 10.0,
      "SELECT Product.name FROM Product, Division "
      "WHERE Division.city = 'LA' AND Product.Did = Division.Did"));
  ex.queries.push_back(parse_and_bind(
      c, "Q2", 0.5,
      "SELECT Part.name FROM Product, Part, Division "
      "WHERE Division.city = 'LA' AND Product.Did = Division.Did "
      "AND Part.Pid = Product.Pid"));
  ex.queries.push_back(parse_and_bind(
      c, "Q3", 0.8,
      "SELECT Customer.name, Product.name, quantity "
      "FROM Product, Division, Order, Customer "
      "WHERE Division.city = 'LA' AND Product.Did = Division.Did "
      "AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid "
      "AND date > DATE '1996-07-01'"));
  ex.queries.push_back(parse_and_bind(
      c, "Q4", 5.0,
      "SELECT Customer.city, date FROM Order, Customer "
      "WHERE quantity > 100 AND Order.Cid = Customer.Cid"));
  return ex;
}

Database populate_paper_database(double scale, std::uint64_t seed) {
  Rng rng(seed);
  const Catalog catalog = make_paper_catalog();
  Database db;
  auto rows_of = [&](const std::string& rel) {
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(catalog.stats(rel).rows * scale));
  };
  const std::int64_t n_product = rows_of("Product");
  const std::int64_t n_division = rows_of("Division");
  const std::int64_t n_order = rows_of("Order");
  const std::int64_t n_customer = rows_of("Customer");
  const std::int64_t n_part = rows_of("Part");

  // 50 cities; 'LA' and 'SF' are cities 0 and 1 so the paper predicates
  // select ~2% each.
  auto city_name = [](std::int64_t c) -> std::string {
    if (c == 0) return "LA";
    if (c == 1) return "SF";
    return "city_" + std::to_string(c);
  };

  {
    Table t(catalog.schema("Division"), catalog.blocking_factor());
    for (std::int64_t i = 0; i < n_division; ++i) {
      t.append({Value::int64(i),
                Value::string(i == 0 ? "Re" : "div_" + std::to_string(i)),
                Value::string(city_name(rng.uniform_int(0, 49)))});
    }
    db.add_table("Division", std::move(t));
  }
  {
    Table t(catalog.schema("Product"), catalog.blocking_factor());
    for (std::int64_t i = 0; i < n_product; ++i) {
      t.append({Value::int64(i), Value::string("prod_" + std::to_string(i)),
                Value::int64(rng.uniform_int(0, n_division - 1))});
    }
    db.add_table("Product", std::move(t));
  }
  {
    Table t(catalog.schema("Customer"), catalog.blocking_factor());
    for (std::int64_t i = 0; i < n_customer; ++i) {
      t.append({Value::int64(i), Value::string("cust_" + std::to_string(i)),
                Value::string(city_name(rng.uniform_int(0, 49)))});
    }
    db.add_table("Customer", std::move(t));
  }
  {
    Table t(catalog.schema("Order"), catalog.blocking_factor());
    const std::int64_t jan1 = Value::days_from_civil(1996, 1, 1);
    const std::int64_t dec31 = Value::days_from_civil(1996, 12, 31);
    for (std::int64_t i = 0; i < n_order; ++i) {
      t.append({Value::int64(rng.uniform_int(0, n_product - 1)),
                Value::int64(rng.uniform_int(0, n_customer - 1)),
                Value::int64(rng.uniform_int(1, 200)),
                Value::date(rng.uniform_int(jan1, dec31))});
    }
    db.add_table("Order", std::move(t));
  }
  {
    Table t(catalog.schema("Part"), catalog.blocking_factor());
    for (std::int64_t i = 0; i < n_part; ++i) {
      t.append({Value::int64(i), Value::string("part_" + std::to_string(i)),
                Value::int64(rng.uniform_int(0, n_product - 1)),
                Value::string("sup_" + std::to_string(rng.uniform_int(0, 99)))});
    }
    db.add_table("Part", std::move(t));
  }
  return db;
}

MvppGraph build_figure3_mvpp(const CostModel& cost_model) {
  const Catalog& c = cost_model.catalog();
  MvppGraph g;
  auto schema = [&](const std::string& rel) {
    return make_scan(c, rel)->output_schema();
  };
  const NodeId product = g.add_base("Product", schema("Product"), 1.0);
  const NodeId division = g.add_base("Division", schema("Division"), 1.0);
  const NodeId part = g.add_base("Part", schema("Part"), 1.0);
  const NodeId order = g.add_base("Order", schema("Order"), 1.0);
  const NodeId customer = g.add_base("Customer", schema("Customer"), 1.0);

  const NodeId tmp1 =
      g.add_select(division, eq(col("Division.city"), lit_str("LA")));
  const NodeId tmp2 =
      g.add_join(product, tmp1, eq(col("Product.Did"), col("Division.Did")));
  const NodeId result1 = g.add_project(tmp2, {"Product.name"});
  const NodeId tmp3 =
      g.add_join(tmp2, part, eq(col("Part.Pid"), col("Product.Pid")));
  const NodeId result2 = g.add_project(tmp3, {"Part.name"});

  const NodeId tmp4 =
      g.add_join(order, customer, eq(col("Order.Cid"), col("Customer.Cid")));
  const NodeId tmp5 = g.add_select(
      tmp4, gt(col("Order.date"), lit(Value::date_ymd(1996, 7, 1))));
  const NodeId tmp6 =
      g.add_join(tmp2, tmp5, eq(col("Product.Pid"), col("Order.Pid")));
  const NodeId result3 = g.add_project(
      tmp6, {"Customer.name", "Product.name", "Order.quantity"});
  const NodeId tmp7 =
      g.add_select(tmp4, gt(col("Order.quantity"), lit_i64(100)));
  const NodeId result4 = g.add_project(tmp7, {"Customer.city", "Order.date"});

  g.set_name(tmp1, "tmp1");
  g.set_name(tmp2, "tmp2");
  g.set_name(tmp3, "tmp3");
  g.set_name(tmp4, "tmp4");
  g.set_name(tmp5, "tmp5");
  g.set_name(tmp6, "tmp6");
  g.set_name(tmp7, "tmp7");
  g.set_name(result1, "result1");
  g.set_name(result2, "result2");
  g.set_name(result3, "result3");
  g.set_name(result4, "result4");

  g.add_query("Q1", 10.0, result1);
  g.add_query("Q2", 0.5, result2);
  g.add_query("Q3", 0.8, result3);
  g.add_query("Q4", 5.0, result4);

  g.annotate(cost_model);
  return g;
}

std::vector<QuerySpec> make_pushdown_variant_queries(const Catalog& c) {
  std::vector<QuerySpec> queries;
  queries.push_back(parse_and_bind(
      c, "Q1", 10.0,
      "SELECT Product.name FROM Product, Division "
      "WHERE Division.city = 'LA' AND Product.Did = Division.Did"));
  queries.push_back(parse_and_bind(
      c, "Q2", 0.5,
      "SELECT Part.name FROM Product, Part, Division "
      "WHERE Division.name = 'Re' AND Product.Did = Division.Did "
      "AND Part.Pid = Product.Pid"));
  queries.push_back(parse_and_bind(
      c, "Q3", 0.8,
      "SELECT Customer.name, Product.name, quantity "
      "FROM Product, Division, Order, Customer "
      "WHERE Division.city = 'SF' AND Product.Did = Division.Did "
      "AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid "
      "AND date > DATE '1996-07-01'"));
  queries.push_back(parse_and_bind(
      c, "Q4", 5.0,
      "SELECT Customer.city, date FROM Order, Customer "
      "WHERE quantity > 100 AND Order.Cid = Customer.Cid"));
  return queries;
}

}  // namespace mvd
