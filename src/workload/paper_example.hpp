// The paper's running example (Section 2): the five member-database
// relations of Table 1 with their statistics, and the four warehouse
// queries with access frequencies fq = 10, 0.5, 0.8 and 5.
//
// Statistics are set so the paper's stated selectivities fall out of the
// estimator: Division.city has 50 distinct values (s = 0.02 for
// city = 'LA'), Order.quantity is uniform on [1, 200] (s ≈ 0.5 for
// quantity > 100), Order.date spans 1996 (s ≈ 0.5 for
// date > 1996-07-01). The intermediate join sizes of Table 1 are pinned
// via catalog join-size overrides.
#pragma once

#include <vector>

#include "src/algebra/query_spec.hpp"
#include "src/catalog/catalog.hpp"
#include "src/cost/cost_model.hpp"
#include "src/mvpp/graph.hpp"
#include "src/storage/database.hpp"

namespace mvd {

struct PaperExample {
  Catalog catalog;
  std::vector<QuerySpec> queries;  // Q1..Q4
};

/// Cost-model settings matching the paper's conventions (half-scan
/// equality selections; Table 1 join overrides honored).
CostModelConfig paper_cost_config();

/// Catalog of Table 1 only (no queries).
Catalog make_paper_catalog();

/// Catalog + the four Section 2 queries.
PaperExample make_paper_example();

/// The paper's Figure 3 MVPP, constructed node-by-node with the paper's
/// names (tmp1..tmp7, result1..result4) and annotated against
/// `cost_model`:
///
///   tmp1 = σ city='LA' (Division)          tmp4 = Order ⋈ Customer
///   tmp2 = Product ⋈ tmp1                  tmp5 = σ date>1996-07-01 (tmp4)
///   tmp3 = tmp2 ⋈ Part                     tmp6 = tmp2 ⋈ tmp5
///   result1 = π name (tmp2)        Q1      tmp7 = σ quantity>100 (tmp4)
///   result2 = π name (tmp3)        Q2      result4 = π city,date (tmp7)  Q4
///   result3 = π name,qty (tmp6)    Q3
MvppGraph build_figure3_mvpp(const CostModel& cost_model);

/// Populate actual tables for the paper schema at `scale` times the
/// Table 1 row counts (scale = 1 gives the full 30k/5k/50k/20k/80k rows),
/// with foreign keys covering their targets, 50 cities including 'LA' and
/// 'SF', order dates spanning 1996, and quantities uniform on [1, 200] —
/// so executed selectivities match the catalog statistics. Deterministic
/// in `seed`.
Database populate_paper_database(double scale = 0.01, std::uint64_t seed = 17);

/// The Figure 5 / Figure 7 variant of the queries (Q2 selects
/// Division.name = 'Re', Q3 selects Division.city = 'SF'), used by the
/// pushdown benches to reproduce the disjunctive shared selection
/// city='LA' OR city='SF' OR name='Re' of Figure 8.
std::vector<QuerySpec> make_pushdown_variant_queries(const Catalog& catalog);

}  // namespace mvd
