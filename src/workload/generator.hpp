// Synthetic warehouse workloads: star schemas with random SPJ queries, and
// relation-chain schemas for join-order stress. Both are deterministic in
// their seeds so benches and property tests are reproducible.
//
// The star generator can also populate an actual Database whose contents
// match the catalog statistics, letting the validation bench compare
// estimated sizes/costs against executed reality.
#pragma once

#include <cstdint>

#include "src/algebra/query_spec.hpp"
#include "src/catalog/catalog.hpp"
#include "src/storage/database.hpp"

namespace mvd {

struct StarSchemaOptions {
  std::size_t dimensions = 4;
  std::size_t fact_rows = 50'000;
  std::size_t dimension_rows = 2'000;
  /// Distinct values of each dimension's "category" column (selection
  /// selectivity 1/categories for equality predicates).
  std::size_t categories = 20;
  /// Distinct values (and range max) of the fact "measure" column.
  std::size_t measure_range = 1'000;
  double update_frequency = 1.0;
  double blocking_factor = 10.0;
};

/// Fact(fid, d0, d1, ..., measure, amount) plus Dim0..DimN(id, category,
/// label, weight) with statistics filled in.
Catalog make_star_catalog(const StarSchemaOptions& options);

struct StarQueryOptions {
  std::size_t count = 8;
  std::size_t min_dimensions = 1;
  std::size_t max_dimensions = 3;
  /// Probability that a chosen dimension gets a category equality
  /// selection; the fact table gets a measure range selection with the
  /// same probability.
  double selection_probability = 0.7;
  /// Zipf skew of the query-frequency distribution (0 = uniform).
  double zipf_skew = 1.0;
  /// Frequency of the most frequent query.
  double top_frequency = 10.0;
  /// Probability that a query is a GROUP BY rollup (grouping on one
  /// chosen dimension's category, SUM + COUNT over the fact measure)
  /// instead of a plain SPJ query.
  double aggregation_probability = 0.0;
  std::uint64_t seed = 7;
};

/// Random SPJ queries joining the fact table to a random subset of
/// dimensions, named "Q1".."Qn".
std::vector<QuerySpec> generate_star_queries(const Catalog& catalog,
                                             const StarSchemaOptions& schema,
                                             const StarQueryOptions& options);

/// Populate tables consistent with make_star_catalog's statistics
/// (uniform categories/measures, foreign keys covering the dimensions).
Database populate_star_database(const StarSchemaOptions& options,
                                std::uint64_t seed = 11);

/// Catalog whose statistics are *computed from* the populated tables
/// (truthful stats, for isolating cost-model error from stats error).
Catalog catalog_from_database(const Database& db, double blocking_factor,
                              double update_frequency = 1.0);

struct SnowflakeSchemaOptions {
  /// Dimensions hanging off the fact table, each with a parent
  /// sub-dimension (Dim_i -> Sub_i on sub_id): the classic snowflake.
  std::size_t dimensions = 3;
  std::size_t fact_rows = 50'000;
  std::size_t dimension_rows = 2'000;
  std::size_t subdimension_rows = 100;
  std::size_t categories = 20;
  double update_frequency = 1.0;
  double blocking_factor = 10.0;
};

/// Fact(fid, d0.., measure) + Dim_i(id, sub_id, label) + Sub_i(id, region)
/// with statistics. Snowflake queries must traverse two join hops to
/// reach the selective column (Sub_i.region), making intermediate
/// dimension joins attractive materialization candidates.
Catalog make_snowflake_catalog(const SnowflakeSchemaOptions& options);

/// Queries joining the fact through one or two dimensions down to their
/// sub-dimensions, with equality selections on Sub_i.region; frequencies
/// Zipf-distributed. Named "Q1".."Qn".
std::vector<QuerySpec> generate_snowflake_queries(
    const Catalog& catalog, const SnowflakeSchemaOptions& schema,
    const StarQueryOptions& options);

struct ChainSchemaOptions {
  std::size_t length = 5;       // relations R0..R(length-1)
  std::size_t rows = 10'000;    // per relation
  double update_frequency = 1.0;
  double blocking_factor = 10.0;
};

/// R0(k0, v), R1(k0, k1, v), ..., each Ri joining R(i-1) on k(i-1); used
/// for join-order and optimality-gap experiments.
Catalog make_chain_catalog(const ChainSchemaOptions& options);

/// Populate chain tables matching make_chain_catalog's statistics: R_i
/// holds rows * (1 + 0.5 * (i % 3)) rows, each key column uniform over
/// half that many distinct values, v uniform in [1, 1000].
Database populate_chain_database(const ChainSchemaOptions& options,
                                 std::uint64_t seed = 11);

struct ChainQueryOptions {
  std::size_t count = 6;
  std::size_t min_span = 2;   // consecutive relations per query
  std::size_t max_span = 4;
  double zipf_skew = 1.0;
  double top_frequency = 10.0;
  std::uint64_t seed = 13;
};

/// Queries over random consecutive spans of the chain (guaranteeing
/// overlapping subexpressions between queries).
std::vector<QuerySpec> generate_chain_queries(const Catalog& catalog,
                                              const ChainSchemaOptions& schema,
                                              const ChainQueryOptions& options);

}  // namespace mvd
