#include "src/maintenance/sharded_refresh.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/check/check.hpp"
#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/exec/delta.hpp"
#include "src/exec/sharded.hpp"
#include "src/mvpp/rewrite.hpp"
#include "src/obs/publish.hpp"
#include "src/obs/trace.hpp"

namespace mvd {

namespace {

void add_stats(ExecStats& into, const ExecStats& from) {
  into.blocks_read += from.blocks_read;
  into.rows_scanned += from.rows_scanned;
  into.batches += from.batches;
  for (const auto& [k, v] : from.rows_out) into.rows_out[k] += v;
  for (const auto& [k, v] : from.delta_rows) into.delta_rows[k] += v;
  into.rows_exchanged += from.rows_exchanged;
  into.blocks_exchanged += from.blocks_exchanged;
}

void merge_shard_stats(ExecStats* stats, std::vector<ExecStats> shard_stats) {
  if (stats == nullptr) return;
  for (const ExecStats& s : shard_stats) add_stats(*stats, s);
  if (stats->per_shard.size() != shard_stats.size()) {
    stats->per_shard = std::move(shard_stats);
  } else {
    for (std::size_t s = 0; s < shard_stats.size(); ++s) {
      add_stats(stats->per_shard[s], shard_stats[s]);
    }
  }
}

RefreshPath max_path(RefreshPath a, RefreshPath b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

struct BucketRefresh {
  RefreshPath path = RefreshPath::kSkipped;
  double delta_rows = 0;
  double blocks_read = 0;
  std::optional<DeltaTable> view_delta;
};

// The single-site per-view refresh body, applied to one bucket's slice
// against that bucket's frontier. Mirrors incremental_refresh exactly:
// touch-check skip, grouped +/- apply for aggregate roots, row-wise
// apply otherwise, recompute fallback with diff recovery when an
// ancestor needs this view's delta.
BucketRefresh refresh_bucket_view(const PlanPtr& plan, const std::string& name,
                                  Database& bdb, DeltaSet& frontier,
                                  ExecMode mode, std::size_t threads,
                                  bool need_delta, ExecStats* stats) {
  BucketRefresh out;
  DeltaPropagator prop(bdb, frontier, mode, threads);
  if (!prop.touches(plan)) return out;

  ExecStats local;
  std::optional<DeltaTable> view_delta;
  if (plan->kind() == OpKind::kAggregate) {
    const auto& agg = static_cast<const AggregateOp&>(*plan);
    auto child_delta = prop.propagate(plan->children()[0], &local);
    if (child_delta.has_value()) {
      const DeltaTable compact = child_delta->compacted();
      const Table& stored = bdb.table(name);
      if (compact.empty()) {
        view_delta.emplace(stored.schema(), stored.blocking_factor());
        out.path = RefreshPath::kGroupApplied;
      } else if (auto applied = maintain_aggregate_view(agg, stored, compact)) {
        local.blocks_read += stored.blocks() + compact.blocks();
        local.rows_scanned +=
            static_cast<double>(stored.row_count() + compact.row_count());
        view_delta = std::move(applied->view_delta);
        bdb.put_table(name, std::move(applied->next));
        out.path = RefreshPath::kGroupApplied;
        out.delta_rows = static_cast<double>(compact.row_count());
      }
    }
  } else {
    auto delta = prop.propagate(plan, &local);
    if (delta.has_value()) {
      const DeltaTable compact = delta->compacted();
      Table& stored = bdb.mutable_table(name);
      local.blocks_read += compact.blocks();
      if (compact.deletes().row_count() > 0) {
        local.blocks_read += stored.blocks();
        local.rows_scanned += static_cast<double>(stored.row_count());
      }
      apply_delta(stored, compact);
      view_delta = compact;
      out.path = RefreshPath::kApplied;
      out.delta_rows = static_cast<double>(compact.row_count());
    }
  }

  if (!view_delta.has_value()) {
    const Table& fresh = prop.full(plan, &local);
    if (need_delta) {
      DeltaTable diffed = DeltaTable::diff(bdb.table(name), fresh);
      out.delta_rows = static_cast<double>(diffed.row_count());
      view_delta = std::move(diffed);
    }
    bdb.put_table(name, Table(fresh));
    out.path = RefreshPath::kRecomputed;
  }

  out.blocks_read = local.blocks_read;
  if (view_delta.has_value()) {
    out.view_delta = *view_delta;  // one copy gathers, one feeds ancestors
    frontier.insert_or_assign(name, std::move(*view_delta));
  }
  if (stats != nullptr) add_stats(*stats, local);
  return out;
}

}  // namespace

RefreshReport sharded_incremental_refresh(const MvppGraph& graph,
                                          const MaterializedSet& m,
                                          ShardedDatabase& db,
                                          const DeltaSet& base_deltas,
                                          ExecStats* stats, ExecMode mode,
                                          std::size_t threads) {
  MVD_TRACE_SPAN("maintenance", "sharded-incremental-refresh");
  constexpr std::size_t kBuckets = ShardedDatabase::kBuckets;
  RefreshReport report;
  const auto annotate = [](TraceSpan& span, const ViewRefresh& e) {
    if (!span.active()) return;
    span.arg("view", e.view);
    span.arg("path", to_string(e.path));
    span.arg("delta_rows", e.delta_rows);
    span.arg("blocks_read", e.blocks_read);
    span.arg("stored_rows", e.stored_rows);
  };

  // Per-bucket frontiers: partitioned-table deltas shuffled to their
  // owning buckets (the shuffle itself was counted by apply_base_deltas),
  // replicated-table deltas visible to every bucket.
  std::vector<DeltaSet> bucket_frontier = db.route_deltas(base_deltas);
  for (const auto& [name, delta] : base_deltas) {
    if (db.is_partitioned(name) || delta.empty()) continue;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      bucket_frontier[b].emplace(name, delta);
    }
  }
  DeltaSet coord_frontier = base_deltas;
  ShardedExecutor sharded(db, mode, threads);

  for (NodeId v : m) {
    const std::string& name = graph.node(v).name;
    TraceSpan view_span("maintenance", "refresh-view");
    MaterializedSet deps = m;
    deps.erase(v);
    const PlanPtr plan = refresh_plan(graph, v, deps);

    bool ancestor_in_m = false;
    bool ancestor_global = false;
    bool ancestor_partitioned = false;
    for (NodeId a : graph.ancestors(v)) {
      if (!m.contains(a)) continue;
      ancestor_in_m = true;
      if (db.is_partitioned(graph.node(a).name)) {
        ancestor_partitioned = true;
      } else {
        ancestor_global = true;
      }
    }

    ViewRefresh entry;
    entry.id = v;
    entry.view = name;

    if (db.is_partitioned(name)) {
      // Bucket schemas are identical, so one pre-flight check suffices.
      check_stage_hook("refresh", plan, &db.bucket(0));
      std::vector<ExecStats> shard_stats(db.shards());
      std::vector<BucketRefresh> outs(kBuckets);
      parallel_shards(
          db.shards(), threads,
          [&](std::size_t, std::size_t sb, std::size_t se) {
            for (std::size_t s = sb; s < se; ++s) {
              const auto [b0, b1] = db.bucket_range(s);
              for (std::size_t b = b0; b < b1; ++b) {
                outs[b] = refresh_bucket_view(plan, name, db.bucket(b),
                                              bucket_frontier[b], mode,
                                              threads, ancestor_in_m,
                                              &shard_stats[s]);
              }
            }
          });
      db.bump_generation();  // bucket slices changed in place

      for (const BucketRefresh& o : outs) {
        entry.path = max_path(entry.path, o.path);
        entry.delta_rows += o.delta_rows;
        entry.blocks_read += o.blocks_read;
      }
      entry.stored_rows = static_cast<double>(db.partitioned_rows(name));
      // Per-shard stored rows, for the shard-stats consistency lint rule.
      for (std::size_t s = 0; s < db.shards(); ++s) {
        const auto [b0, b1] = db.bucket_range(s);
        double rows = 0;
        for (std::size_t b = b0; b < b1; ++b) {
          rows += static_cast<double>(db.bucket(b).table(name).row_count());
        }
        shard_stats[s].rows_out[name] = rows;
      }
      merge_shard_stats(stats, std::move(shard_stats));

      if (ancestor_global) {
        // A coordinator view consumes this view's delta: gather the
        // bucket deltas in bucket order.
        MVD_TRACE_SPAN("exec.exchange", "gather");
        std::optional<DeltaTable> gathered;
        double gather_blocks = 0;
        for (const BucketRefresh& o : outs) {
          if (!o.view_delta.has_value()) continue;
          if (!gathered.has_value()) {
            gathered.emplace(o.view_delta->schema(),
                             o.view_delta->blocking_factor());
          }
          gather_blocks += o.view_delta->blocks();
          for (const Tuple& t : o.view_delta->inserts().rows()) {
            gathered->add_insert(t);
          }
          for (const Tuple& t : o.view_delta->deletes().rows()) {
            gathered->add_delete(t);
          }
        }
        if (gathered.has_value()) {
          const double rows = static_cast<double>(gathered->row_count());
          record_gather(db.exchange_log(), rows, gather_blocks);
          if (stats != nullptr) {
            stats->rows_exchanged += rows;
            stats->blocks_exchanged += gather_blocks;
          }
          coord_frontier.insert_or_assign(name, std::move(*gathered));
        }
      }
      if (stats != nullptr) {
        stats->rows_out[name] = entry.stored_rows;
        stats->delta_rows[name] = entry.delta_rows;
      }
    } else {
      // Coordinator-resident view.
      check_stage_hook("refresh", plan, &db.coordinator());
      Database& cdb = db.coordinator();
      const bool has_part_leaf = analyze_shard_plan(plan, db).refs > 0;
      DeltaPropagator prop(cdb, coord_frontier, mode, threads);
      if (!prop.touches(plan)) {
        entry.stored_rows = static_cast<double>(cdb.table(name).row_count());
        if (stats != nullptr) {
          stats->rows_out[name] = entry.stored_rows;
          stats->delta_rows[name] = 0;
        }
        annotate(view_span, entry);
        report.views.push_back(std::move(entry));
        continue;
      }

      ExecStats local;
      std::optional<DeltaTable> view_delta;
      bool mutated_in_place = false;
      try {
        if (plan->kind() == OpKind::kAggregate) {
          const auto& agg = static_cast<const AggregateOp&>(*plan);
          auto child_delta = prop.propagate(plan->children()[0], &local);
          if (child_delta.has_value()) {
            const DeltaTable compact = child_delta->compacted();
            const Table& stored = cdb.table(name);
            if (compact.empty()) {
              view_delta.emplace(stored.schema(), stored.blocking_factor());
              entry.path = RefreshPath::kGroupApplied;
            } else if (auto applied =
                           maintain_aggregate_view(agg, stored, compact)) {
              local.blocks_read += stored.blocks() + compact.blocks();
              local.rows_scanned += static_cast<double>(stored.row_count() +
                                                        compact.row_count());
              view_delta = std::move(applied->view_delta);
              db.put_global(name, std::move(applied->next));
              entry.path = RefreshPath::kGroupApplied;
              entry.delta_rows = static_cast<double>(compact.row_count());
            }
          }
        } else {
          auto delta = prop.propagate(plan, &local);
          if (delta.has_value()) {
            const DeltaTable compact = delta->compacted();
            Table& stored = cdb.mutable_table(name);
            local.blocks_read += compact.blocks();
            if (compact.deletes().row_count() > 0) {
              local.blocks_read += stored.blocks();
              local.rows_scanned += static_cast<double>(stored.row_count());
            }
            apply_delta(stored, compact);
            view_delta = compact;
            mutated_in_place = true;
            entry.path = RefreshPath::kApplied;
            entry.delta_rows = static_cast<double>(compact.row_count());
          }
        }
      } catch (const ExecError&) {
        // The coordinator cannot produce a partitioned leaf's full side;
        // fall through to the sharded recompute. Plans without a
        // partitioned leaf hit real errors — rethrow those.
        if (!has_part_leaf) throw;
        view_delta.reset();
        entry.path = RefreshPath::kSkipped;
        entry.delta_rows = 0;
      }

      if (!view_delta.has_value()) {
        Table fresh = has_part_leaf ? sharded.run(plan, &local)
                                    : Table(prop.full(plan, &local));
        if (ancestor_in_m) {
          DeltaTable diffed = DeltaTable::diff(cdb.table(name), fresh);
          entry.delta_rows = static_cast<double>(diffed.row_count());
          view_delta = std::move(diffed);
        }
        db.put_global(name, std::move(fresh));
        entry.path = RefreshPath::kRecomputed;
      }
      if (mutated_in_place) db.bump_generation();

      if (view_delta.has_value()) {
        if (ancestor_partitioned && !view_delta->empty()) {
          // Partitioned descendants-of-ancestors read this view inside
          // their bucket plans: broadcast its delta to every frontier.
          MVD_TRACE_SPAN("exec.exchange", "broadcast");
          record_broadcast(db.exchange_log(),
                           static_cast<double>(view_delta->row_count()),
                           view_delta->blocks(),
                           approx_delta_bytes(*view_delta), db.shards());
          if (stats != nullptr) {
            const double n = static_cast<double>(db.shards());
            stats->rows_exchanged +=
                static_cast<double>(view_delta->row_count()) * n;
            stats->blocks_exchanged += view_delta->blocks() * n;
          }
          for (std::size_t b = 0; b < kBuckets; ++b) {
            bucket_frontier[b].insert_or_assign(name, *view_delta);
          }
        }
        coord_frontier.insert_or_assign(name, std::move(*view_delta));
      }
      entry.stored_rows = static_cast<double>(cdb.table(name).row_count());
      entry.blocks_read = local.blocks_read;
      local.rows_out[name] = entry.stored_rows;
      local.delta_rows[name] = entry.delta_rows;
      if (stats != nullptr) {
        add_stats(*stats, local);
        stats->rows_out[name] = entry.stored_rows;
        stats->delta_rows[name] = entry.delta_rows;
      }
    }

    annotate(view_span, entry);
    report.views.push_back(std::move(entry));
  }
  db.bump_generation();
  publish_refresh_report(report);
  return report;
}

}  // namespace mvd
