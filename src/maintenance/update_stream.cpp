#include "src/maintenance/update_stream.hpp"

#include <cmath>
#include <map>

#include "src/common/error.hpp"

namespace mvd {

std::size_t apply_update_batch(Database& db, const std::string& relation,
                               const UpdateStreamOptions& options, Rng& rng,
                               DeltaSet* delta_out) {
  const Table& old = db.table(relation);
  if (old.row_count() == 0) return 0;

  DeltaTable* delta = nullptr;
  if (delta_out != nullptr) {
    delta = &delta_out->try_emplace(relation, old.schema(),
                                    old.blocking_factor())
                 .first->second;
  }

  const std::size_t n = old.row_count();
  auto count_of = [&](double fraction) {
    return static_cast<std::size_t>(std::llround(fraction * static_cast<double>(n)));
  };
  const std::size_t deletes = std::min(count_of(options.delete_fraction), n - 1);
  const std::size_t modifies = count_of(options.modify_fraction);
  const std::size_t inserts = count_of(options.insert_fraction);

  // Choose rows to delete.
  std::vector<bool> dead(n, false);
  for (std::size_t i = 0; i < deletes; ++i) dead[rng.index(n)] = true;

  Table next(old.schema(), old.blocking_factor());
  for (std::size_t i = 0; i < n; ++i) {
    if (!dead[i]) {
      next.append(old.row(i));
    } else if (delta != nullptr) {
      delta->add_delete(old.row(i));
    }
  }

  // In-place modifications: perturb one numeric column of random rows.
  std::size_t numeric_col = old.schema().size();
  for (std::size_t c = 0; c < old.schema().size(); ++c) {
    if (old.schema().at(c).type == ValueType::kInt64) {
      numeric_col = c;
      break;
    }
  }
  std::size_t touched = deletes;
  if (numeric_col < old.schema().size() && next.row_count() > 0) {
    // A row drawn twice must record delete(original) + insert(final), not a
    // chain through intermediate values — the chained form deletes a tuple
    // the pre-batch table never held, so the recorded delta could not be
    // replayed against a replica of the old state.
    std::map<std::size_t, Tuple> originals;
    for (std::size_t i = 0; i < modifies; ++i) {
      const std::size_t r = rng.index(next.row_count());
      Tuple t = next.row(r);
      if (delta != nullptr) originals.try_emplace(r, t);
      t[numeric_col] =
          Value::int64(t[numeric_col].as_int64() + rng.uniform_int(-5, 5));
      next.update_row(r, std::move(t));
      ++touched;
    }
    for (const auto& [r, original] : originals) {
      delta->add_delete(original);
      delta->add_insert(next.row(r));
    }
  }

  // Inserts: near-duplicates of random surviving rows.
  for (std::size_t i = 0; i < inserts && next.row_count() > 0; ++i) {
    Tuple t = next.row(rng.index(next.row_count()));
    if (numeric_col < old.schema().size()) {
      t[numeric_col] = Value::int64(t[numeric_col].as_int64() + 1);
    }
    if (delta != nullptr) delta->add_insert(t);
    next.append(std::move(t));
    ++touched;
  }

  db.put_table(relation, std::move(next));
  return touched;
}

}  // namespace mvd
