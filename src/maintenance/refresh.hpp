// Executed incremental view maintenance — the refresh discipline the
// paper defers to future work ("we assume re-computing is used whenever
// an update occurs"), made real so the incremental cost model can be
// validated against measured block work.
//
// Given the signed deltas of the base relations changed since the last
// refresh, incremental_refresh() walks the materialized set bottom-up
// (NodeId order is topological) and, per view:
//
//   1. builds the view's refresh plan against the materialized frontier
//      (descendant views in M are scan leaves, exactly as in deploy),
//   2. skips the view when no leaf of that plan has a pending delta,
//   3. otherwise propagates the leaf deltas through the plan
//      (src/exec/delta.hpp) and applies the result to the stored table in
//      place — grouped aggregate views get a grouped +/- apply when their
//      aggregates are self-maintainable — and
//   4. records the view's own delta so ancestor views consume it instead
//      of re-deriving work below the frontier.
//
// Views whose plans the delta algebra cannot cover (interior aggregates,
// theta joins, non-self-maintainable aggregate batches) fall back to
// recomputation; when an ancestor in M needs their delta it is recovered
// by bag-diffing the old and new stored states. Because views refresh in
// ascending id order over an already-updated database, every full-side
// read observes the post-update state consistently, for both the row and
// vectorized engines.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/algebra/aggregate.hpp"
#include "src/exec/delta.hpp"
#include "src/mvpp/evaluation.hpp"

namespace mvd {

/// How WarehouseDesigner::refresh maintains stored views.
enum class RefreshMode {
  kRecompute,    // the paper's discipline: re-run every refresh plan
  kIncremental,  // propagate base deltas, apply in place
};

std::string to_string(RefreshMode mode);

/// Mode selected by the MVD_REFRESH_MODE environment variable
/// ("incremental"/"inc" or "recompute"); kRecompute when unset or
/// unrecognized.
RefreshMode default_refresh_mode();

/// Which path one view took during a refresh round.
enum class RefreshPath {
  kSkipped,       // no leaf of the refresh plan had a pending delta
  kApplied,       // propagated delta applied row-wise to the stored table
  kGroupApplied,  // grouped +/- delta applied to a stored aggregate view
  kRecomputed,    // fallback: refresh plan re-run, result stored
};

std::string to_string(RefreshPath path);

struct ViewRefresh {
  NodeId id = -1;
  std::string view;
  RefreshPath path = RefreshPath::kSkipped;
  /// Compacted delta rows (inserts + deletes) applied to the stored view;
  /// for kRecomputed, the bag-diff size when an ancestor needed it, else 0.
  double delta_rows = 0;
  /// Stored row count after the refresh.
  double stored_rows = 0;
  /// Block accesses attributed to maintaining this view this round.
  double blocks_read = 0;
};

struct RefreshReport {
  std::vector<ViewRefresh> views;

  std::size_t count(RefreshPath path) const;
  double total_delta_rows() const;
  double total_blocks_read() const;
};

/// Result of a grouped +/- apply: the view's next stored state plus the
/// view's own (compacted) delta for ancestors to consume.
struct GroupApplyResult {
  Table next;
  DeltaTable view_delta;  // over the stored schema, compacted
};

/// Apply `child_delta` (compacted, over the aggregate's input schema) to
/// the stored aggregate view by grouped +/- maintenance. Returns nullopt
/// when this batch is not self-maintainable — AVG without a COUNT and a
/// same-column SUM to recover exact state from, deletes without a COUNT
/// to detect emptied groups, or a delete reaching a stored MIN/MAX —
/// in which case the caller recomputes. Throws ExecError when the delta
/// disagrees with the stored view (negative counts, deletes into absent
/// groups). Shared by the single-site and sharded refresh drivers.
std::optional<GroupApplyResult> maintain_aggregate_view(
    const AggregateOp& op, const Table& stored, const DeltaTable& child_delta);

/// Incrementally maintain every view of `m` (stored in `db` under its
/// MVPP node name) after the base-table changes described by
/// `base_deltas`. `db` must already hold the post-update base tables —
/// apply_update_batch with a delta_out captures exactly this pair.
/// Work is accumulated into `stats` with the engines' block accounting;
/// per-view row counts land in stats->rows_out and applied delta rows in
/// stats->delta_rows (mirroring deploy, so the exec-rows lint rules keep
/// working). Throws ExecError when a delta deletes rows a stored view
/// does not contain (stale or externally modified warehouse).
RefreshReport incremental_refresh(const MvppGraph& graph,
                                  const MaterializedSet& m, Database& db,
                                  const DeltaSet& base_deltas,
                                  ExecStats* stats = nullptr,
                                  ExecMode mode = default_exec_mode(),
                                  std::size_t threads = default_exec_threads());

}  // namespace mvd
