#include "src/maintenance/refresh.hpp"

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <unordered_map>
#include <utility>

#include "src/check/check.hpp"
#include "src/common/error.hpp"
#include "src/exec/exec_internal.hpp"
#include "src/mvpp/rewrite.hpp"
#include "src/obs/publish.hpp"
#include "src/obs/trace.hpp"

namespace mvd {

std::string to_string(RefreshMode mode) {
  switch (mode) {
    case RefreshMode::kRecompute:
      return "recompute";
    case RefreshMode::kIncremental:
      return "incremental";
  }
  return "?";
}

RefreshMode default_refresh_mode() {
  const char* env = std::getenv("MVD_REFRESH_MODE");
  if (env == nullptr) return RefreshMode::kRecompute;
  const std::string mode(env);
  if (mode == "incremental" || mode == "inc") return RefreshMode::kIncremental;
  return RefreshMode::kRecompute;
}

std::string to_string(RefreshPath path) {
  switch (path) {
    case RefreshPath::kSkipped:
      return "skipped";
    case RefreshPath::kApplied:
      return "applied";
    case RefreshPath::kGroupApplied:
      return "group-applied";
    case RefreshPath::kRecomputed:
      return "recomputed";
  }
  return "?";
}

std::size_t RefreshReport::count(RefreshPath path) const {
  std::size_t n = 0;
  for (const ViewRefresh& v : views) {
    if (v.path == path) ++n;
  }
  return n;
}

double RefreshReport::total_delta_rows() const {
  double total = 0;
  for (const ViewRefresh& v : views) total += v.delta_rows;
  return total;
}

double RefreshReport::total_blocks_read() const {
  double total = 0;
  for (const ViewRefresh& v : views) total += v.blocks_read;
  return total;
}

namespace {

std::string packed_row_key(const Tuple& t,
                           const std::vector<std::size_t>& indices) {
  std::string key;
  for (std::size_t i : indices) append_packed_key(key, t[i]);
  return key;
}

/// Accumulated effect of one child delta on one group of an aggregate
/// view. `ins` mirrors the engine's accumulators over the insert rows
/// alone (exactly what a fresh group's row is built from); deleted-value
/// extremes drive the MIN/MAX self-maintainability check.
struct GroupDelta {
  std::int64_t dn = 0;  // insert rows − delete rows
  bool saw_delete = false;
  std::vector<double> dsum;  // per SUM spec: Σ insert values − Σ deletes
  std::vector<Accumulator> ins;
  std::vector<std::optional<Value>> del_lo;
  std::vector<std::optional<Value>> del_hi;
  Tuple group_values;
};

}  // namespace

// See refresh.hpp — shared with the sharded refresh driver.
std::optional<GroupApplyResult> maintain_aggregate_view(
    const AggregateOp& op, const Table& stored,
    const DeltaTable& child_delta) {
  const Schema& is = child_delta.schema();
  const std::size_t n_groups = op.group_by().size();
  const std::vector<AggSpec>& specs = op.aggregates();

  std::vector<std::size_t> group_idx;
  for (const std::string& g : op.group_by()) group_idx.push_back(is.index_of(g));
  std::vector<std::size_t> agg_idx;  // SIZE_MAX for COUNT(*)
  for (const AggSpec& a : specs) {
    agg_idx.push_back(a.column.empty() ? SIZE_MAX : is.index_of(a.column));
  }

  // Static self-maintainability: a COUNT recovers group cardinality; an
  // AVG additionally needs a same-column SUM (the stored average is a
  // rounded quotient — multiplying it back would lose exactness).
  std::optional<std::size_t> count_spec;
  for (std::size_t j = 0; j < specs.size(); ++j) {
    if (specs[j].fn == AggFn::kCount) {
      count_spec = j;
      break;
    }
  }
  bool has_minmax = false;
  std::vector<std::size_t> avg_source(specs.size(), SIZE_MAX);
  for (std::size_t j = 0; j < specs.size(); ++j) {
    switch (specs[j].fn) {
      case AggFn::kCount:
      case AggFn::kSum:
      case AggFn::kSumInt:
        break;
      case AggFn::kMin:
      case AggFn::kMax:
        has_minmax = true;
        break;
      case AggFn::kAvg: {
        if (!count_spec.has_value()) return std::nullopt;
        for (std::size_t k = 0; k < specs.size(); ++k) {
          if (specs[k].fn == AggFn::kSum && specs[k].column == specs[j].column) {
            avg_source[j] = k;
            break;
          }
        }
        if (avg_source[j] == SIZE_MAX) return std::nullopt;
        break;
      }
    }
  }
  const bool has_deletes = child_delta.deletes().row_count() > 0;
  if (has_deletes && !count_spec.has_value()) return std::nullopt;
  // A global aggregate stores a placeholder row for the empty input;
  // telling it apart from real data needs a COUNT, and its MIN/MAX
  // placeholders are not real extrema.
  if (n_groups == 0 && has_minmax && !count_spec.has_value()) {
    return std::nullopt;
  }

  // Fold the child delta into per-group effects.
  std::unordered_map<std::string, std::size_t> affected_index;
  std::vector<GroupDelta> affected;
  std::vector<std::string> affected_keys;  // first-seen order
  auto group_of = [&](const Tuple& t) -> GroupDelta& {
    std::string key = packed_row_key(t, group_idx);
    auto [it, inserted] = affected_index.try_emplace(key, affected.size());
    if (inserted) {
      GroupDelta g;
      g.dsum.resize(specs.size(), 0);
      g.ins.resize(specs.size());
      g.del_lo.resize(specs.size());
      g.del_hi.resize(specs.size());
      g.group_values.reserve(n_groups);
      for (std::size_t gi : group_idx) g.group_values.push_back(t[gi]);
      affected.push_back(std::move(g));
      affected_keys.push_back(std::move(key));
    }
    return affected[it->second];
  };
  for (const Tuple& t : child_delta.inserts().rows()) {
    GroupDelta& g = group_of(t);
    g.dn += 1;
    for (std::size_t j = 0; j < specs.size(); ++j) {
      const Value v =
          agg_idx[j] == SIZE_MAX ? Value::int64(1) : t[agg_idx[j]];
      if (specs[j].fn == AggFn::kSum || specs[j].fn == AggFn::kSumInt) {
        g.dsum[j] += v.as_double();
      }
      g.ins[j].feed(v);
    }
  }
  for (const Tuple& t : child_delta.deletes().rows()) {
    GroupDelta& g = group_of(t);
    g.dn -= 1;
    g.saw_delete = true;
    for (std::size_t j = 0; j < specs.size(); ++j) {
      const Value v =
          agg_idx[j] == SIZE_MAX ? Value::int64(1) : t[agg_idx[j]];
      if (specs[j].fn == AggFn::kSum || specs[j].fn == AggFn::kSumInt) {
        g.dsum[j] -= v.as_double();
      }
      if (specs[j].fn == AggFn::kMin || specs[j].fn == AggFn::kMax) {
        if (!g.del_lo[j].has_value() || v.compare(*g.del_lo[j]) < 0) {
          g.del_lo[j] = v;
        }
        if (!g.del_hi[j].has_value() || v.compare(*g.del_hi[j]) > 0) {
          g.del_hi[j] = v;
        }
      }
    }
  }

  // Index stored rows by group key (group columns lead the view schema).
  std::vector<std::size_t> stored_group_idx;
  for (std::size_t i = 0; i < n_groups; ++i) stored_group_idx.push_back(i);
  std::unordered_map<std::string, std::size_t> stored_index;
  stored_index.reserve(stored.row_count());
  for (std::size_t i = 0; i < stored.row_count(); ++i) {
    stored_index.emplace(packed_row_key(stored.row(i), stored_group_idx), i);
  }

  // Dynamic checks + new-row computation, before any mutation.
  const Schema& os = stored.schema();
  std::unordered_map<std::size_t, std::optional<Tuple>> replacements;
  std::vector<Tuple> fresh_rows;
  for (std::size_t a = 0; a < affected.size(); ++a) {
    const GroupDelta& g = affected[a];
    const auto sit = stored_index.find(affected_keys[a]);
    if (sit == stored_index.end()) {
      if (g.saw_delete) {
        throw ExecError(
            "aggregate delta deletes from a group absent in the stored view "
            "(stale or clobbered view?)");
      }
      Tuple row = g.group_values;
      for (std::size_t j = 0; j < specs.size(); ++j) {
        row.push_back(g.ins[j].result(specs[j].fn, os.at(n_groups + j).type));
      }
      fresh_rows.push_back(std::move(row));
      continue;
    }
    const Tuple& old = stored.row(sit->second);
    std::int64_t old_count = 0;
    if (count_spec.has_value()) {
      old_count = old[n_groups + *count_spec].as_int64();
    }
    if (n_groups == 0 && has_minmax && old_count == 0) {
      return std::nullopt;  // placeholder extrema are not maintainable
    }
    for (std::size_t j = 0; j < specs.size(); ++j) {
      const std::size_t c = n_groups + j;
      if (specs[j].fn == AggFn::kMin && g.del_lo[j].has_value() &&
          g.del_lo[j]->compare(old[c]) <= 0) {
        return std::nullopt;  // stored minimum may have been deleted
      }
      if (specs[j].fn == AggFn::kMax && g.del_hi[j].has_value() &&
          g.del_hi[j]->compare(old[c]) >= 0) {
        return std::nullopt;
      }
    }
    const std::int64_t new_count = old_count + g.dn;
    if (count_spec.has_value() && new_count < 0) {
      throw ExecError(
          "aggregate delta drives a group count negative (stale or "
          "clobbered view?)");
    }
    if (count_spec.has_value() && new_count == 0) {
      if (n_groups > 0) {
        replacements.emplace(sit->second, std::nullopt);  // group emptied
        continue;
      }
      // Global aggregate over a now-empty input: the engine's placeholder.
      Tuple row;
      for (std::size_t j = 0; j < specs.size(); ++j) {
        row.push_back(Accumulator{}.result(specs[j].fn, os.at(j).type));
      }
      replacements.emplace(sit->second, std::move(row));
      continue;
    }
    Tuple row = old;
    for (std::size_t j = 0; j < specs.size(); ++j) {
      const std::size_t c = n_groups + j;
      switch (specs[j].fn) {
        case AggFn::kCount:
          row[c] = Value::int64(old[c].as_int64() + g.dn);
          break;
        case AggFn::kSum:
          row[c] = Value::real(old[c].as_double() + g.dsum[j]);
          break;
        case AggFn::kSumInt:
          row[c] = Value::int64(old[c].as_int64() +
                                static_cast<std::int64_t>(
                                    std::llround(g.dsum[j])));
          break;
        case AggFn::kAvg: {
          const double sum =
              old[n_groups + avg_source[j]].as_double() + g.dsum[avg_source[j]];
          row[c] = Value::real(new_count > 0
                                   ? sum / static_cast<double>(new_count)
                                   : 0.0);
          break;
        }
        case AggFn::kMin:
          if (g.ins[j].min.has_value() && g.ins[j].min->compare(old[c]) < 0) {
            row[c] = *g.ins[j].min;
          }
          break;
        case AggFn::kMax:
          if (g.ins[j].max.has_value() && g.ins[j].max->compare(old[c]) > 0) {
            row[c] = *g.ins[j].max;
          }
          break;
      }
    }
    replacements.emplace(sit->second, std::move(row));
  }

  // Rebuild the stored view, collecting its own delta for ancestors.
  GroupApplyResult result{Table(os, stored.blocking_factor()),
                          DeltaTable(os, stored.blocking_factor())};
  for (std::size_t i = 0; i < stored.row_count(); ++i) {
    const auto rit = replacements.find(i);
    if (rit == replacements.end()) {
      result.next.append(stored.row(i));
      continue;
    }
    result.view_delta.add_delete(stored.row(i));
    if (rit->second.has_value()) {
      result.next.append(*rit->second);
      result.view_delta.add_insert(*rit->second);
    }
  }
  for (Tuple& row : fresh_rows) {
    result.view_delta.add_insert(row);
    result.next.append(std::move(row));
  }
  result.view_delta = result.view_delta.compacted();
  return result;
}

namespace {

void fold_stats(ExecStats* into, const ExecStats& from) {
  if (into == nullptr) return;
  into->blocks_read += from.blocks_read;
  into->rows_scanned += from.rows_scanned;
  into->batches += from.batches;
  for (const auto& [k, v] : from.rows_out) into->rows_out[k] = v;
  for (const auto& [k, v] : from.delta_rows) into->delta_rows[k] = v;
}

}  // namespace

RefreshReport incremental_refresh(const MvppGraph& graph,
                                  const MaterializedSet& m, Database& db,
                                  const DeltaSet& base_deltas,
                                  ExecStats* stats, ExecMode mode,
                                  std::size_t threads) {
  RefreshReport report;
  MVD_TRACE_SPAN("maintenance", "incremental-refresh");
  const auto annotate = [](TraceSpan& span, const ViewRefresh& e) {
    if (!span.active()) return;
    span.arg("view", e.view);
    span.arg("path", to_string(e.path));
    span.arg("delta_rows", e.delta_rows);
    span.arg("blocks_read", e.blocks_read);
    span.arg("stored_rows", e.stored_rows);
  };
  // Deltas pending at the frontier: base-relation deltas plus, as views
  // refresh, each view's own delta under its node name (the same names
  // refresh_plan gives its scan leaves).
  DeltaSet frontier = base_deltas;
  for (NodeId v : m) {
    const std::string& name = graph.node(v).name;
    TraceSpan view_span("maintenance", "refresh-view");
    MaterializedSet deps = m;
    deps.erase(v);
    const PlanPtr plan = refresh_plan(graph, v, deps);
    // Static pre-flight of the refresh plan (MVD_CHECK=off|warn|error).
    check_stage_hook("refresh", plan, &db);

    ViewRefresh entry;
    entry.id = v;
    entry.view = name;
    // A fresh propagator per view: earlier iterations replaced stored
    // tables in the database, so memoized full sides (and the vectorized
    // engine's columnar cache) must not carry over.
    DeltaPropagator prop(db, frontier, mode, threads);
    if (!prop.touches(plan)) {
      entry.stored_rows = static_cast<double>(db.table(name).row_count());
      if (stats != nullptr) {
        stats->rows_out[name] = entry.stored_rows;
        stats->delta_rows[name] = 0;
      }
      annotate(view_span, entry);
      report.views.push_back(std::move(entry));
      continue;
    }

    ExecStats local;
    std::optional<DeltaTable> view_delta;  // over the stored schema
    if (plan->kind() == OpKind::kAggregate) {
      const auto& agg = static_cast<const AggregateOp&>(*plan);
      auto child_delta = prop.propagate(plan->children()[0], &local);
      if (child_delta.has_value()) {
        const DeltaTable compact = child_delta->compacted();
        const Table& stored = db.table(name);
        if (compact.empty()) {
          view_delta.emplace(stored.schema(), stored.blocking_factor());
          entry.path = RefreshPath::kGroupApplied;
        } else if (auto applied = maintain_aggregate_view(agg, stored, compact)) {
          // Applying reads the stored groups once plus the delta.
          local.blocks_read += stored.blocks() + compact.blocks();
          local.rows_scanned +=
              static_cast<double>(stored.row_count() + compact.row_count());
          view_delta = std::move(applied->view_delta);
          db.put_table(name, std::move(applied->next));
          entry.path = RefreshPath::kGroupApplied;
          entry.delta_rows = static_cast<double>(compact.row_count());
        }
      }
    } else {
      auto delta = prop.propagate(plan, &local);
      if (delta.has_value()) {
        const DeltaTable compact = delta->compacted();
        Table& stored = db.mutable_table(name);
        // Applying charges the delta; a batch with deletes additionally
        // rewrites the stored table.
        local.blocks_read += compact.blocks();
        if (compact.deletes().row_count() > 0) {
          local.blocks_read += stored.blocks();
          local.rows_scanned += static_cast<double>(stored.row_count());
        }
        apply_delta(stored, compact);
        view_delta = compact;
        entry.path = RefreshPath::kApplied;
        entry.delta_rows = static_cast<double>(compact.row_count());
      }
    }

    if (!view_delta.has_value()) {
      // Fallback: recompute from the frontier (the propagator memoized any
      // full sides it already produced, so partial work is reused).
      const Table& fresh = prop.full(plan, &local);
      const bool ancestor_in_m = [&] {
        for (NodeId a : graph.ancestors(v)) {
          if (m.contains(a)) return true;
        }
        return false;
      }();
      if (ancestor_in_m) {
        DeltaTable diffed = DeltaTable::diff(db.table(name), fresh);
        entry.delta_rows = static_cast<double>(diffed.row_count());
        view_delta = std::move(diffed);
      }
      db.put_table(name, Table(fresh));
      entry.path = RefreshPath::kRecomputed;
    }

    if (view_delta.has_value()) {
      frontier.insert_or_assign(name, std::move(*view_delta));
    }
    entry.stored_rows = static_cast<double>(db.table(name).row_count());
    entry.blocks_read = local.blocks_read;
    local.rows_out[name] = entry.stored_rows;
    local.delta_rows[name] = entry.delta_rows;
    fold_stats(stats, local);
    annotate(view_span, entry);
    report.views.push_back(std::move(entry));
  }
  publish_refresh_report(report);
  return report;
}

}  // namespace mvd
