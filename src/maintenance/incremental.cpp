#include "src/maintenance/incremental.hpp"

#include <map>

#include "src/common/assert.hpp"

namespace mvd {

namespace {

// Delta size (in blocks) of `node`'s result and the cost of computing it,
// for a batch changing `fraction` of `base`. Nodes untouched by the delta
// have zero delta and zero cost.
struct DeltaInfo {
  double blocks = 0;
  double cost = 0;
};

DeltaInfo delta_walk(const MvppGraph& g, NodeId id, NodeId base,
                     double fraction, std::map<NodeId, DeltaInfo>& memo) {
  if (auto it = memo.find(id); it != memo.end()) return it->second;
  const MvppNode& n = g.node(id);
  DeltaInfo info;
  switch (n.kind) {
    case MvppNodeKind::kBase:
      if (id == base) info.blocks = fraction * n.blocks;
      break;
    case MvppNodeKind::kSelect:
    case MvppNodeKind::kProject: {
      const DeltaInfo child = delta_walk(g, n.children[0], base, fraction, memo);
      if (child.blocks > 0) {
        // Scan the child delta; the result delta shrinks proportionally to
        // this operator's overall reduction.
        const double reduction =
            g.node(n.children[0]).blocks > 0
                ? n.blocks / g.node(n.children[0]).blocks
                : 0;
        info.blocks = child.blocks * reduction;
        info.cost = child.cost + child.blocks;
      }
      break;
    }
    case MvppNodeKind::kJoin: {
      const DeltaInfo l = delta_walk(g, n.children[0], base, fraction, memo);
      const DeltaInfo r = delta_walk(g, n.children[1], base, fraction, memo);
      // A single base lies beneath exactly one side.
      const DeltaInfo& delta = l.blocks > 0 ? l : r;
      const MvppNode& other =
          g.node(l.blocks > 0 ? n.children[1] : n.children[0]);
      if (delta.blocks > 0) {
        // Probe the delta against the full other input (block nested loop
        // with the delta as the outer).
        info.cost = delta.cost + delta.blocks + delta.blocks * other.blocks;
        const double input_product =
            g.node(n.children[0]).blocks * g.node(n.children[1]).blocks;
        const double reduction =
            input_product > 0 ? n.blocks / input_product : 0;
        info.blocks = delta.blocks * other.blocks * reduction;
      }
      break;
    }
    case MvppNodeKind::kQuery:
      info = delta_walk(g, n.children[0], base, fraction, memo);
      break;
  }
  memo.emplace(id, info);
  return info;
}

}  // namespace

double incremental_delta_cost(const MvppGraph& graph, NodeId v, NodeId base,
                              const IncrementalOptions& options) {
  MVD_ASSERT(graph.annotated());
  MVD_ASSERT(graph.node(base).kind == MvppNodeKind::kBase);
  std::map<NodeId, DeltaInfo> memo;
  const DeltaInfo info =
      delta_walk(graph, v, base, options.update_fraction, memo);
  if (info.blocks <= 0 && info.cost <= 0) return 0;
  // Apply the delta to the stored view: write its blocks.
  return info.cost + info.blocks;
}

double incremental_maintenance_cost(const MvppGraph& graph, NodeId v,
                                    const IncrementalOptions& options) {
  double total = 0;
  for (NodeId b : graph.bases_under(v)) {
    total += graph.node(b).frequency *
             incremental_delta_cost(graph, v, b, options);
  }
  return total;
}

double total_incremental_maintenance(const MvppGraph& graph,
                                     const MaterializedSet& m,
                                     const IncrementalOptions& options) {
  double total = 0;
  for (NodeId v : m) total += incremental_maintenance_cost(graph, v, options);
  return total;
}

namespace {

/// Blocks charged by running a node's refresh plan from the frontier —
/// the executed engines' accounting (scan/select charge inputs, project
/// and aggregate are free, a hash join charges both inputs once).
double frontier_produce_cost(const MvppGraph& g, NodeId id,
                             const MaterializedSet& deps,
                             std::map<NodeId, double>& memo) {
  if (auto it = memo.find(id); it != memo.end()) return it->second;
  const MvppNode& n = g.node(id);
  double cost = 0;
  if (n.kind == MvppNodeKind::kBase || deps.contains(id)) {
    cost = n.blocks;  // scan of a base table or stored view
  } else {
    switch (n.kind) {
      case MvppNodeKind::kSelect:
        cost = frontier_produce_cost(g, n.children[0], deps, memo) +
               g.node(n.children[0]).blocks;
        break;
      case MvppNodeKind::kJoin:
        cost = frontier_produce_cost(g, n.children[0], deps, memo) +
               frontier_produce_cost(g, n.children[1], deps, memo) +
               g.node(n.children[0]).blocks + g.node(n.children[1]).blocks;
        break;
      case MvppNodeKind::kProject:
      case MvppNodeKind::kAggregate:
      case MvppNodeKind::kQuery:
        cost = frontier_produce_cost(g, n.children[0], deps, memo);
        break;
      case MvppNodeKind::kBase:
        break;  // unreachable
    }
  }
  memo.emplace(id, cost);
  return cost;
}

struct ExecDelta {
  double blocks = 0;
  double cost = 0;
};

/// Delta size and propagation cost of one node under the executed driver,
/// stopping at the materialized frontier (descendant views contribute the
/// deltas recorded when they were refreshed).
ExecDelta exec_delta_walk(const MvppGraph& g, NodeId id,
                          const MaterializedSet& deps,
                          const std::map<NodeId, double>& base_fractions,
                          const std::map<NodeId, double>& view_deltas,
                          std::map<NodeId, ExecDelta>& memo,
                          std::map<NodeId, double>& produce_memo) {
  if (auto it = memo.find(id); it != memo.end()) return it->second;
  const MvppNode& n = g.node(id);
  ExecDelta info;
  if (n.kind == MvppNodeKind::kBase) {
    const auto it = base_fractions.find(id);
    if (it != base_fractions.end() && it->second > 0) {
      info.blocks = it->second * n.blocks;
      info.cost = info.blocks;  // delta scan
    }
  } else if (deps.contains(id)) {
    const auto it = view_deltas.find(id);
    if (it != view_deltas.end() && it->second > 0) {
      info.blocks = it->second;
      info.cost = info.blocks;
    }
  } else {
    switch (n.kind) {
      case MvppNodeKind::kSelect:
      case MvppNodeKind::kProject: {
        const ExecDelta child =
            exec_delta_walk(g, n.children[0], deps, base_fractions,
                            view_deltas, memo, produce_memo);
        if (child.blocks > 0) {
          const double cb = g.node(n.children[0]).blocks;
          info.blocks = child.blocks * (cb > 0 ? n.blocks / cb : 0);
          info.cost = child.cost +
                      (n.kind == MvppNodeKind::kSelect ? child.blocks : 0);
        }
        break;
      }
      case MvppNodeKind::kJoin: {
        const ExecDelta l =
            exec_delta_walk(g, n.children[0], deps, base_fractions,
                            view_deltas, memo, produce_memo);
        const ExecDelta r =
            exec_delta_walk(g, n.children[1], deps, base_fractions,
                            view_deltas, memo, produce_memo);
        const double lb = g.node(n.children[0]).blocks;
        const double rb = g.node(n.children[1]).blocks;
        const double reduction = lb * rb > 0 ? n.blocks / (lb * rb) : 0;
        info.cost = l.cost + r.cost;
        // Each live side probes the full other side once (hash build on
        // the delta) and the full side is produced from the frontier.
        if (l.blocks > 0) {
          info.cost += l.blocks + rb +
                       frontier_produce_cost(g, n.children[1], deps,
                                             produce_memo);
          info.blocks += l.blocks * rb * reduction;
        }
        if (r.blocks > 0) {
          info.cost += r.blocks + lb +
                       frontier_produce_cost(g, n.children[0], deps,
                                             produce_memo);
          info.blocks += r.blocks * lb * reduction;
        }
        break;
      }
      case MvppNodeKind::kAggregate: {
        const ExecDelta child =
            exec_delta_walk(g, n.children[0], deps, base_fractions,
                            view_deltas, memo, produce_memo);
        if (child.blocks > 0) {
          const double cb = g.node(n.children[0]).blocks;
          info.blocks = child.blocks * (cb > 0 ? n.blocks / cb : 0);
          // Grouped apply: read the child delta and the stored groups.
          info.cost = child.cost + child.blocks + n.blocks;
        }
        break;
      }
      case MvppNodeKind::kQuery:
        info = exec_delta_walk(g, n.children[0], deps, base_fractions,
                               view_deltas, memo, produce_memo);
        break;
      case MvppNodeKind::kBase:
        break;  // handled above
    }
  }
  memo.emplace(id, info);
  return info;
}

}  // namespace

double executed_refresh_estimate(
    const MvppGraph& graph, const MaterializedSet& m,
    const std::map<NodeId, double>& base_fractions) {
  MVD_ASSERT(graph.annotated());
  double total = 0;
  std::map<NodeId, double> view_deltas;
  for (NodeId v : m) {  // ascending = topological, mirroring the driver
    MaterializedSet deps = m;
    deps.erase(v);
    std::map<NodeId, ExecDelta> memo;
    std::map<NodeId, double> produce_memo;
    const ExecDelta info = exec_delta_walk(graph, v, deps, base_fractions,
                                           view_deltas, memo, produce_memo);
    view_deltas.emplace(v, info.blocks);
    if (info.blocks <= 0 && info.cost <= 0) continue;
    double cost = info.cost;
    if (graph.node(v).kind != MvppNodeKind::kAggregate) {
      // Applying the view's own delta: read it and rewrite the stored
      // table (batches with deletes; the aggregate walk charged its
      // grouped apply already).
      cost += info.blocks + graph.node(v).blocks;
    }
    total += cost;
  }
  return total;
}

}  // namespace mvd
