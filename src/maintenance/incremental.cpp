#include "src/maintenance/incremental.hpp"

#include <map>

#include "src/common/assert.hpp"

namespace mvd {

namespace {

// Delta size (in blocks) of `node`'s result and the cost of computing it,
// for a batch changing `fraction` of `base`. Nodes untouched by the delta
// have zero delta and zero cost.
struct DeltaInfo {
  double blocks = 0;
  double cost = 0;
};

DeltaInfo delta_walk(const MvppGraph& g, NodeId id, NodeId base,
                     double fraction, std::map<NodeId, DeltaInfo>& memo) {
  if (auto it = memo.find(id); it != memo.end()) return it->second;
  const MvppNode& n = g.node(id);
  DeltaInfo info;
  switch (n.kind) {
    case MvppNodeKind::kBase:
      if (id == base) info.blocks = fraction * n.blocks;
      break;
    case MvppNodeKind::kSelect:
    case MvppNodeKind::kProject: {
      const DeltaInfo child = delta_walk(g, n.children[0], base, fraction, memo);
      if (child.blocks > 0) {
        // Scan the child delta; the result delta shrinks proportionally to
        // this operator's overall reduction.
        const double reduction =
            g.node(n.children[0]).blocks > 0
                ? n.blocks / g.node(n.children[0]).blocks
                : 0;
        info.blocks = child.blocks * reduction;
        info.cost = child.cost + child.blocks;
      }
      break;
    }
    case MvppNodeKind::kJoin: {
      const DeltaInfo l = delta_walk(g, n.children[0], base, fraction, memo);
      const DeltaInfo r = delta_walk(g, n.children[1], base, fraction, memo);
      // A single base lies beneath exactly one side.
      const DeltaInfo& delta = l.blocks > 0 ? l : r;
      const MvppNode& other =
          g.node(l.blocks > 0 ? n.children[1] : n.children[0]);
      if (delta.blocks > 0) {
        // Probe the delta against the full other input (block nested loop
        // with the delta as the outer).
        info.cost = delta.cost + delta.blocks + delta.blocks * other.blocks;
        const double input_product =
            g.node(n.children[0]).blocks * g.node(n.children[1]).blocks;
        const double reduction =
            input_product > 0 ? n.blocks / input_product : 0;
        info.blocks = delta.blocks * other.blocks * reduction;
      }
      break;
    }
    case MvppNodeKind::kQuery:
      info = delta_walk(g, n.children[0], base, fraction, memo);
      break;
  }
  memo.emplace(id, info);
  return info;
}

}  // namespace

double incremental_delta_cost(const MvppGraph& graph, NodeId v, NodeId base,
                              const IncrementalOptions& options) {
  MVD_ASSERT(graph.annotated());
  MVD_ASSERT(graph.node(base).kind == MvppNodeKind::kBase);
  std::map<NodeId, DeltaInfo> memo;
  const DeltaInfo info =
      delta_walk(graph, v, base, options.update_fraction, memo);
  if (info.blocks <= 0 && info.cost <= 0) return 0;
  // Apply the delta to the stored view: write its blocks.
  return info.cost + info.blocks;
}

double incremental_maintenance_cost(const MvppGraph& graph, NodeId v,
                                    const IncrementalOptions& options) {
  double total = 0;
  for (NodeId b : graph.bases_under(v)) {
    total += graph.node(b).frequency *
             incremental_delta_cost(graph, v, b, options);
  }
  return total;
}

double total_incremental_maintenance(const MvppGraph& graph,
                                     const MaterializedSet& m,
                                     const IncrementalOptions& options) {
  double total = 0;
  for (NodeId v : m) total += incremental_maintenance_cost(graph, v, options);
  return total;
}

}  // namespace mvd
