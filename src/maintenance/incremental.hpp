// Incremental (delta-propagation) maintenance cost model — an extension
// the paper lists as future work ("we assume re-computing is used whenever
// an update occurs"; see also Gupta & Mumick's survey cited there).
//
// Model: an update batch changes `update_fraction` of a base relation's
// blocks. The delta flows up the view's subtree: selections/projections
// scan only the delta; a join probes the delta against the full other
// side. The per-view cost is the sum over affected operators plus the
// write of the view's own delta. Comparing this against recompute
// maintenance is the Ext-C ablation bench.
#pragma once

#include <map>

#include "src/mvpp/evaluation.hpp"

namespace mvd {

struct IncrementalOptions {
  /// Fraction of a base relation touched by one update batch.
  double update_fraction = 0.01;
};

/// Cost (block accesses) of incrementally maintaining view `v` for one
/// update batch of base relation `base` (a kBase node id under v).
/// Returns 0 when `base` is not beneath `v`.
double incremental_delta_cost(const MvppGraph& graph, NodeId v, NodeId base,
                              const IncrementalOptions& options);

/// Per-period maintenance cost of view `v`: Σ over base relations b under
/// v of fu(b) · incremental_delta_cost(v, b).
double incremental_maintenance_cost(const MvppGraph& graph, NodeId v,
                                    const IncrementalOptions& options);

/// Σ over views in `m`.
double total_incremental_maintenance(const MvppGraph& graph,
                                     const MaterializedSet& m,
                                     const IncrementalOptions& options);

/// Estimated block work of one executed incremental_refresh round
/// (src/maintenance/refresh.hpp) over every view of `m`, for an update
/// batch changing `base_fractions[b]` of each base relation b's blocks
/// (absent bases are unchanged). Unlike incremental_delta_cost — which
/// keeps the paper-era block-nested-loop probe (delta.blocks ×
/// other.blocks) — this mirrors the executed driver: hash probes charge
/// the delta build plus the full side once, full sides are produced from
/// the materialized frontier (descendant views in `m` contribute their
/// own deltas instead of base-derived ones), and applying a delta charges
/// the delta plus a rewrite of the stored view. Aggregate views are
/// costed as a grouped apply (delta + stored groups). The estimate's
/// known biases: it assumes every view takes a delta path (no recompute
/// fallbacks) and that batches contain deletes (stored rewrite charged).
double executed_refresh_estimate(const MvppGraph& graph,
                                 const MaterializedSet& m,
                                 const std::map<NodeId, double>& base_fractions);

}  // namespace mvd
