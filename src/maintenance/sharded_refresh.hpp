// Shard-aware incremental view maintenance.
//
// The single-site driver (src/maintenance/refresh.hpp) walks the
// materialized set in NodeId order with one delta frontier. The sharded
// driver keeps one frontier per bucket plus one at the coordinator, and
// routes deltas the way the storage layout demands:
//
//   base deltas      partitioned-table deltas hash-shuffle to their
//                    owning buckets (ShardedDatabase::route_deltas);
//                    replicated-dimension deltas broadcast whole into
//                    every bucket frontier
//   partitioned view refreshed bucket-by-bucket (shards in parallel,
//                    buckets sequential within a shard) with the exact
//                    single-site per-view discipline — touch-check skip,
//                    row-wise apply, grouped +/- apply, recompute
//                    fallback; each bucket's own delta feeds that
//                    bucket's frontier, and when a global ancestor needs
//                    it the bucket deltas gather to the coordinator
//                    frontier in bucket order
//   global view      refreshed at the coordinator; when its plan reads a
//                    partitioned leaf whose full side the coordinator
//                    cannot produce, the fallback recompute runs through
//                    ShardedExecutor (per-bucket partials, final merge);
//                    its delta broadcasts into the bucket frontiers when
//                    a partitioned ancestor consumes it
//
// Every cross-bucket merge walks buckets in ascending order, so refresh
// outcomes are bit-identical at any (shards x threads) configuration,
// and versus single-site refresh the stored views agree as bags.
#pragma once

#include "src/maintenance/refresh.hpp"
#include "src/storage/sharded_table.hpp"

namespace mvd {

/// Sharded counterpart of incremental_refresh. `db` must already hold the
/// post-update base state (apply_base_deltas with the same `base_deltas`).
/// Stats totals cover every shard plus coordinator work; per-shard
/// counters land in stats->per_shard (per-shard stored rows of each
/// partitioned view in per_shard[s].rows_out[view]), exchange traffic in
/// rows/blocks_exchanged and the database's exchange log.
RefreshReport sharded_incremental_refresh(
    const MvppGraph& graph, const MaterializedSet& m, ShardedDatabase& db,
    const DeltaSet& base_deltas, ExecStats* stats = nullptr,
    ExecMode mode = default_exec_mode(),
    std::size_t threads = default_exec_threads());

}  // namespace mvd
