// Synthetic update streams for exercising the recompute-refresh discipline
// end-to-end: mutate base tables, refresh the deployed views, check
// answers stay consistent with from-scratch evaluation.
#pragma once

#include <cstdint>

#include "src/common/random.hpp"
#include "src/storage/database.hpp"
#include "src/storage/delta_table.hpp"

namespace mvd {

struct UpdateStreamOptions {
  /// Fraction of existing rows to modify in place per batch.
  double modify_fraction = 0.005;
  /// Rows to append per batch, as a fraction of the current size.
  double insert_fraction = 0.005;
  /// Rows to delete per batch, as a fraction of the current size.
  double delete_fraction = 0.002;
};

/// Apply one update batch to `relation` in `db`: deletes random rows,
/// perturbs numeric columns of random rows, and appends near-duplicates of
/// random rows (keeping schema types valid). Returns the number of rows
/// touched. Deterministic in `rng`.
///
/// When `delta_out` is given, the batch's exact signed delta (new state −
/// old state, modifications as delete + insert pairs) is accumulated into
/// delta_out[relation] — across calls too, so several batches can be
/// captured and refreshed in one incremental_refresh round.
std::size_t apply_update_batch(Database& db, const std::string& relation,
                               const UpdateStreamOptions& options, Rng& rng,
                               DeltaSet* delta_out = nullptr);

}  // namespace mvd
