#include "src/warehouse/designer.hpp"

#include <sstream>

#include "src/common/error.hpp"
#include "src/common/text_table.hpp"
#include "src/common/units.hpp"
#include "src/exec/sharded.hpp"
#include "src/maintenance/sharded_refresh.hpp"
#include "src/obs/publish.hpp"
#include "src/obs/trace.hpp"
#include "src/sql/parser.hpp"

namespace mvd {

WarehouseDesigner::WarehouseDesigner(Catalog catalog, DesignerOptions options)
    : catalog_(std::move(catalog)),
      options_(options),
      cost_model_(catalog_, options.cost),
      optimizer_(cost_model_) {}

void WarehouseDesigner::add_query(const std::string& name, double frequency,
                                  const std::string& sql) {
  add_query(parse_and_bind(catalog_, name, frequency, sql));
}

void WarehouseDesigner::add_query(QuerySpec spec) {
  for (const QuerySpec& q : queries_) {
    if (q.name() == spec.name()) {
      throw PlanError("duplicate query name '" + spec.name() + "'");
    }
  }
  queries_.push_back(std::move(spec));
}

SelectionAlgorithm WarehouseDesigner::selection_algorithm() const {
  switch (options_.algorithm) {
    case DesignerOptions::Algorithm::kYang:
      return [](const MvppEvaluator& e) { return yang_heuristic(e); };
    case DesignerOptions::Algorithm::kGreedy:
      return [](const MvppEvaluator& e) { return greedy_incremental(e); };
    case DesignerOptions::Algorithm::kExhaustive: {
      const std::size_t limit = options_.exhaustive_limit;
      return [limit](const MvppEvaluator& e) {
        return exhaustive_optimal(e, limit);
      };
    }
    case DesignerOptions::Algorithm::kAnnealing: {
      const AnnealingOptions annealing = options_.annealing;
      return [annealing](const MvppEvaluator& e) {
        return simulated_annealing(e, annealing);
      };
    }
  }
  throw PlanError("unknown selection algorithm");
}

DesignResult WarehouseDesigner::design() const {
  if (queries_.empty()) {
    throw PlanError("no queries registered; add_query first");
  }
  MVD_TRACE_SPAN("warehouse", "design");
  MvppBuilder builder(optimizer_);
  DesignResult result;
  result.candidates = builder.build_all_rotations(queries_);
  MvppChoice choice = choose_best_mvpp(result.candidates, options_.maintenance,
                                       selection_algorithm());
  result.mvpp_index = choice.index;
  result.selection = std::move(choice.selection);
  // The chosen design's cost ledger, as gauges — the numbers mvlint's
  // obs/metrics-consistent rule reconciles against the SelectionResult.
  if (counters_enabled()) {
    const MvppEvaluator eval(result.graph(), options_.maintenance);
    publish_selection_ledger(eval, result.selection.materialized);
  }
  return result;
}

std::string WarehouseDesigner::report(const DesignResult& design) const {
  const MvppGraph& g = design.graph();
  MvppEvaluator eval(g, options_.maintenance);
  std::ostringstream os;
  os << "=== materialized view design ===\n";
  os << "queries: " << queries_.size() << ", candidate MVPPs: "
     << design.candidates.size() << ", winner: #" << design.mvpp_index
     << " (merge order ";
  for (std::size_t i = 0;
       i < design.candidates[design.mvpp_index].merge_order.size(); ++i) {
    if (i != 0) os << " ";
    os << design.candidates[design.mvpp_index].merge_order[i];
  }
  os << ")\n\n" << g.to_text() << '\n';

  TextTable table({"strategy", "materialized", "query cost", "maintenance",
                   "total"},
                  {Align::kLeft, Align::kLeft, Align::kRight, Align::kRight,
                   Align::kRight});
  auto row = [&](const SelectionResult& r) {
    table.add_row({r.algorithm, to_string(g, r.materialized),
                   format_blocks(r.costs.query_processing),
                   format_blocks(r.costs.maintenance),
                   format_blocks(r.costs.total())});
  };
  row(select_nothing(eval));
  row(select_all_query_results(eval));
  row(select_all_operations(eval));
  row(design.selection);
  os << table.render();
  return os.str();
}

void WarehouseDesigner::deploy(const DesignResult& design, Database& db,
                               ExecStats* stats) const {
  const MvppGraph& g = design.graph();
  MVD_TRACE_SPAN("warehouse", "deploy");
  // Node ids ascend topologically, so iterating the ordered set stores
  // every view after the views it reads.
  for (NodeId v : design.selection.materialized) {
    MaterializedSet deps = design.selection.materialized;
    deps.erase(v);
    const Executor exec(db);
    TraceSpan span("warehouse", "deploy-view");
    Table view = exec.run(refresh_plan(g, v, deps), stats);
    if (span.active()) {
      span.arg("view", g.node(v).name);
      span.arg("rows", static_cast<double>(view.row_count()));
    }
    if (counters_enabled()) {
      MetricsRegistry::global().counter("warehouse/deploy/views").increment();
      MetricsRegistry::global().counter("warehouse/deploy/rows")
          .add(static_cast<double>(view.row_count()));
    }
    if (stats != nullptr) {
      stats->rows_out[g.node(v).name] = static_cast<double>(view.row_count());
    }
    db.put_table(g.node(v).name, std::move(view));
  }
}

void WarehouseDesigner::refresh(const DesignResult& design, Database& db,
                                ExecStats* stats) const {
  // Recompute-and-replace is the paper's maintenance discipline.
  deploy(design, db, stats);
}

RefreshReport WarehouseDesigner::refresh(const DesignResult& design,
                                         Database& db,
                                         const DeltaSet& base_deltas,
                                         RefreshMode mode,
                                         ExecStats* stats,
                                         WorkloadObservatory* obs) const {
  const MvppGraph& g = design.graph();
  RefreshReport report;
  if (mode == RefreshMode::kIncremental) {
    report = incremental_refresh(g, design.selection.materialized, db,
                                 base_deltas, stats);
  } else {
    MVD_TRACE_SPAN("maintenance", "recompute-refresh");
    deploy(design, db, stats);
    for (NodeId v : design.selection.materialized) {
      ViewRefresh entry;
      entry.id = v;
      entry.view = g.node(v).name;
      entry.path = RefreshPath::kRecomputed;
      entry.stored_rows =
          static_cast<double>(db.table(entry.view).row_count());
      report.views.push_back(std::move(entry));
    }
    publish_refresh_report(report);
  }
  if (obs != nullptr) {
    JournalEvent e;
    e.kind = EventKind::kRefresh;
    e.mode = to_string(mode);
    for (const ViewRefresh& v : report.views) {
      if (v.path != RefreshPath::kSkipped) e.refreshed.push_back(v.view);
    }
    obs->record(std::move(e));
    obs->publish_gauges();
  }
  return report;
}

void WarehouseDesigner::deploy(const DesignResult& design, ShardedDatabase& db,
                               ExecStats* stats) const {
  const MvppGraph& g = design.graph();
  MVD_TRACE_SPAN("warehouse", "deploy");
  const ShardedExecutor exec(db);
  for (NodeId v : design.selection.materialized) {
    MaterializedSet deps = design.selection.materialized;
    deps.erase(v);
    const std::string& name = g.node(v).name;
    TraceSpan span("warehouse", "deploy-view");
    const PlanPtr plan = refresh_plan(g, v, deps);
    const ShardPlanAnalysis a = analyze_shard_plan(plan, db);
    double rows = 0;
    if (a.refs == 1 && a.spine_aggregate == nullptr) {
      // Fact-rooted, aggregate-free view: store co-partitioned slices.
      std::vector<Table> slices = exec.run_partitioned(plan, stats);
      for (const Table& t : slices) rows += static_cast<double>(t.row_count());
      std::string key;
      if (const std::string* leaf_key = db.partition_key(a.leaf->relation());
          leaf_key != nullptr && !leaf_key->empty() && !slices.empty()) {
        try {
          if (slices.front().schema().find(*leaf_key).has_value()) {
            key = *leaf_key;
          }
        } catch (const BindError&) {
          // Ambiguous in the view schema: treat the key as lost.
        }
      }
      if (stats != nullptr) {
        if (stats->per_shard.size() != db.shards()) {
          stats->per_shard.assign(db.shards(), ExecStats{});
        }
        for (std::size_t s = 0; s < db.shards(); ++s) {
          const auto [b0, b1] = db.bucket_range(s);
          double shard_rows = 0;
          for (std::size_t b = b0; b < b1; ++b) {
            shard_rows += static_cast<double>(slices[b].row_count());
          }
          stats->per_shard[s].rows_out[name] = shard_rows;
        }
      }
      db.put_partitioned_slices(name, std::move(slices), key);
    } else {
      // Aggregate spine or coordinator-only plan: one global result.
      Table view = exec.run(plan, stats);
      rows = static_cast<double>(view.row_count());
      db.put_global(name, std::move(view));
    }
    if (span.active()) {
      span.arg("view", name);
      span.arg("rows", rows);
    }
    if (counters_enabled()) {
      MetricsRegistry::global().counter("warehouse/deploy/views").increment();
      MetricsRegistry::global().counter("warehouse/deploy/rows").add(rows);
    }
    if (stats != nullptr) stats->rows_out[name] = rows;
  }
}

void WarehouseDesigner::refresh(const DesignResult& design, ShardedDatabase& db,
                                ExecStats* stats) const {
  deploy(design, db, stats);
}

RefreshReport WarehouseDesigner::refresh(const DesignResult& design,
                                         ShardedDatabase& db,
                                         const DeltaSet& base_deltas,
                                         RefreshMode mode,
                                         ExecStats* stats) const {
  const MvppGraph& g = design.graph();
  if (mode == RefreshMode::kIncremental) {
    return sharded_incremental_refresh(g, design.selection.materialized, db,
                                       base_deltas, stats);
  }
  MVD_TRACE_SPAN("maintenance", "recompute-refresh");
  deploy(design, db, stats);
  RefreshReport report;
  for (NodeId v : design.selection.materialized) {
    ViewRefresh entry;
    entry.id = v;
    entry.view = g.node(v).name;
    entry.path = RefreshPath::kRecomputed;
    entry.stored_rows = static_cast<double>(
        db.is_partitioned(entry.view)
            ? db.partitioned_rows(entry.view)
            : db.coordinator().table(entry.view).row_count());
    report.views.push_back(std::move(entry));
  }
  publish_refresh_report(report);
  return report;
}

Table WarehouseDesigner::answer(const DesignResult& design,
                                const std::string& query_name,
                                ShardedDatabase& db, ExecStats* stats) const {
  const MvppGraph& g = design.graph();
  const NodeId q = g.find_by_name(query_name);
  if (q < 0 || g.node(q).kind != MvppNodeKind::kQuery) {
    throw PlanError("unknown query '" + query_name + "'");
  }
  TraceSpan span("warehouse", "answer");
  span.arg("query", query_name);
  if (counters_enabled()) {
    MetricsRegistry::global().counter("warehouse/answer/queries").increment();
  }
  const ShardedExecutor exec(db);
  return exec.run(answer_plan(g, q, design.selection.materialized), stats);
}

Table WarehouseDesigner::answer(const DesignResult& design,
                                const std::string& query_name,
                                const Database& db, ExecStats* stats) const {
  const MvppGraph& g = design.graph();
  const NodeId q = g.find_by_name(query_name);
  if (q < 0 || g.node(q).kind != MvppNodeKind::kQuery) {
    throw PlanError("unknown query '" + query_name + "'");
  }
  TraceSpan span("warehouse", "answer");
  span.arg("query", query_name);
  if (counters_enabled()) {
    MetricsRegistry::global().counter("warehouse/answer/queries").increment();
  }
  const Executor exec(db);
  return exec.run(answer_plan(g, q, design.selection.materialized), stats);
}

}  // namespace mvd
