// WarehouseDesigner — the top-level public API.
//
// Usage:
//   Catalog catalog = ...;                 // relations, stats, fu
//   WarehouseDesigner designer(std::move(catalog));
//   designer.add_query("Q1", 10.0, "SELECT ... FROM ... WHERE ...");
//   ...
//   DesignResult design = designer.design();   // MVPPs + view selection
//   designer.deploy(design, db);               // materialize chosen views
//   Table t = designer.answer(design, "Q1", db);  // answered from views
//   ... after base updates ...
//   designer.refresh(design, db);              // recompute stored views
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/exec/executor.hpp"
#include "src/maintenance/refresh.hpp"
#include "src/mvpp/builder.hpp"
#include "src/mvpp/rewrite.hpp"
#include "src/obs/workload.hpp"

namespace mvd {

class ShardedDatabase;

struct DesignerOptions {
  CostModelConfig cost;
  MaintenancePolicy maintenance;
  enum class Algorithm { kYang, kGreedy, kExhaustive, kAnnealing };
  Algorithm algorithm = Algorithm::kYang;
  AnnealingOptions annealing;
  /// Candidate-count cap for the exhaustive algorithm.
  std::size_t exhaustive_limit = 22;
};

struct DesignResult {
  /// All candidate MVPPs (one per merge-order rotation).
  std::vector<MvppBuildResult> candidates;
  /// Index of the winning candidate.
  std::size_t mvpp_index = 0;
  /// The chosen materialized set and its costs (on the winning MVPP).
  SelectionResult selection;

  const MvppGraph& graph() const { return candidates[mvpp_index].graph; }
};

class WarehouseDesigner {
 public:
  explicit WarehouseDesigner(Catalog catalog, DesignerOptions options = {});

  /// Register a warehouse query from SQL text. Throws on parse/bind errors
  /// and duplicate names.
  void add_query(const std::string& name, double frequency,
                 const std::string& sql);
  /// Register an already-bound query.
  void add_query(QuerySpec spec);

  const Catalog& catalog() const { return catalog_; }
  const std::vector<QuerySpec>& queries() const { return queries_; }
  const CostModel& cost_model() const { return cost_model_; }

  /// Generate the candidate MVPPs, run the configured selection algorithm
  /// on each, and return the winner.
  DesignResult design() const;

  /// Printable summary: winning MVPP, chosen views, cost breakdown,
  /// comparison against the trivial strategies.
  std::string report(const DesignResult& design) const;

  // ---- Runtime (requires a Database holding the base tables under their
  // catalog names) ----

  /// Compute and store every chosen view (dependency order; views read
  /// already-stored views). Stored under their MVPP node names. When
  /// `stats` is given, refresh work is accumulated and each view's row
  /// count is recorded under its node name in stats->rows_out (the
  /// selection/exec-rows-consistent lint rule checks those entries
  /// against the stored tables).
  void deploy(const DesignResult& design, Database& db,
              ExecStats* stats = nullptr) const;

  /// Recompute all stored views after base-table changes (the recompute
  /// maintenance discipline of the paper).
  void refresh(const DesignResult& design, Database& db,
               ExecStats* stats = nullptr) const;

  /// Maintain the stored views after base-table changes described by
  /// `base_deltas` (capture them by passing a delta_out to
  /// apply_update_batch). kIncremental propagates the deltas through each
  /// view's refresh plan and applies them in place
  /// (src/maintenance/refresh.hpp); kRecompute re-runs every refresh plan
  /// as deploy does. Both return a per-view report of the path taken.
  /// When `obs` is given, the round is recorded there as one kRefresh
  /// journal event listing the views actually touched.
  RefreshReport refresh(const DesignResult& design, Database& db,
                        const DeltaSet& base_deltas,
                        RefreshMode mode = default_refresh_mode(),
                        ExecStats* stats = nullptr,
                        WorkloadObservatory* obs = nullptr) const;

  /// Answer a registered query from the deployed warehouse.
  Table answer(const DesignResult& design, const std::string& query_name,
               const Database& db, ExecStats* stats = nullptr) const;

  // ---- Sharded runtime (requires a ShardedDatabase built over the same
  // base tables, e.g. by shard_database) ----

  /// Deploy onto a sharded layout. Views whose refresh plan has a
  /// partitioned leaf and no aggregate on its spine are stored as
  /// per-bucket slices (co-partitioned with the fact table; the partition
  /// key survives when it appears in the view's output schema, enabling
  /// point-query routing); aggregate and coordinator-only views are
  /// stored globally. Per-shard stored rows of partitioned views land in
  /// stats->per_shard[s].rows_out.
  void deploy(const DesignResult& design, ShardedDatabase& db,
              ExecStats* stats = nullptr) const;

  /// Recompute all stored views on the sharded layout.
  void refresh(const DesignResult& design, ShardedDatabase& db,
               ExecStats* stats = nullptr) const;

  /// Maintain the sharded warehouse after base-table changes. `db` must
  /// already hold the post-update base state (apply_base_deltas with the
  /// same deltas). kIncremental routes the deltas to their owning shards
  /// and refreshes bucket-by-bucket (src/maintenance/sharded_refresh.hpp);
  /// kRecompute redeploys.
  RefreshReport refresh(const DesignResult& design, ShardedDatabase& db,
                        const DeltaSet& base_deltas,
                        RefreshMode mode = default_refresh_mode(),
                        ExecStats* stats = nullptr) const;

  /// Answer a registered query on the sharded warehouse (per-shard
  /// partials, deterministic bucket-order merge; point queries on the
  /// partition key run only on the owning shard).
  Table answer(const DesignResult& design, const std::string& query_name,
               ShardedDatabase& db, ExecStats* stats = nullptr) const;

 private:
  SelectionAlgorithm selection_algorithm() const;

  Catalog catalog_;
  DesignerOptions options_;
  CostModel cost_model_;
  Optimizer optimizer_;
  std::vector<QuerySpec> queries_;
};

}  // namespace mvd
