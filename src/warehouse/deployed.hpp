// The deployed-view registry: what mvserve knows about the warehouse's
// materialized set at one point in time.
//
// Each deployed view carries its matching summary (ViewDef, extracted
// from the MVPP node's annotated base-relation plan) plus a serving
// status in the ArcadeDB style:
//   kValid    — stored content matches the current base tables; the
//               matcher may answer from it.
//   kStale    — a routed update batch touched a base relation beneath it;
//               the matcher skips it until a refresh clears the flag.
//   kBuilding — a refresh is computing its next version; the matcher
//               skips it (queries fall back to base tables, which are
//               already consistent in the same snapshot).
// The registry is a value type: MvServer snapshots copy it alongside the
// Database, so status transitions publish atomically with the data they
// describe.
#pragma once

#include <string>
#include <vector>

#include "src/mvpp/evaluation.hpp"
#include "src/optimizer/view_rewrite.hpp"
#include "src/storage/database.hpp"

namespace mvd {

enum class ViewStatus { kValid, kStale, kBuilding };

std::string to_string(ViewStatus status);

struct DeployedView {
  ViewDef def;
  ViewStatus status = ViewStatus::kValid;
};

class DeployedViewRegistry {
 public:
  DeployedViewRegistry() = default;

  /// Summarize every view of `m` (in NodeId order, so dependencies come
  /// first). Stored blocks come from the deployed table in `db` when
  /// present, the MVPP annotation otherwise.
  DeployedViewRegistry(const MvppGraph& graph, const MaterializedSet& m,
                       const Database& db);

  const std::vector<DeployedView>& views() const { return views_; }
  bool empty() const { return views_.empty(); }

  const DeployedView* find(const std::string& name) const;
  /// Throws ExecError for unknown views.
  ViewStatus status(const std::string& name) const;
  void set_status(const std::string& name, ViewStatus status);
  void set_all(ViewStatus status);

  /// Flag every view with `relation` beneath it; returns the names
  /// flagged (already-stale views are included and stay stale).
  std::vector<std::string> mark_stale(const std::string& relation);

  /// Names of views whose status is not kValid (the refresh worklist),
  /// in dependency (NodeId) order.
  std::vector<std::string> pending() const;

  /// The matcher's candidate set: defs of kValid views only.
  std::vector<ViewDef> matchable() const;

 private:
  DeployedView* find_mutable(const std::string& name);

  std::vector<DeployedView> views_;
};

}  // namespace mvd
