#include "src/warehouse/deployed.hpp"

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/mvpp/graph.hpp"

namespace mvd {

std::string to_string(ViewStatus status) {
  switch (status) {
    case ViewStatus::kValid: return "VALID";
    case ViewStatus::kStale: return "STALE";
    case ViewStatus::kBuilding: return "BUILDING";
  }
  MVD_ASSERT(false);
  return {};
}

DeployedViewRegistry::DeployedViewRegistry(const MvppGraph& graph,
                                           const MaterializedSet& m,
                                           const Database& db) {
  for (const NodeId id : m) {
    const MvppNode& node = graph.node(id);
    double blocks = node.blocks;
    if (db.has_table(node.name)) {
      blocks = db.table(node.name).blocks();
    }
    DeployedView view;
    view.def = extract_view_def(node.name, node.expr, blocks);
    views_.push_back(std::move(view));
  }
}

const DeployedView* DeployedViewRegistry::find(const std::string& name) const {
  for (const DeployedView& v : views_) {
    if (v.def.name == name) return &v;
  }
  return nullptr;
}

DeployedView* DeployedViewRegistry::find_mutable(const std::string& name) {
  for (DeployedView& v : views_) {
    if (v.def.name == name) return &v;
  }
  return nullptr;
}

ViewStatus DeployedViewRegistry::status(const std::string& name) const {
  const DeployedView* v = find(name);
  if (v == nullptr) throw ExecError("unknown deployed view '" + name + "'");
  return v->status;
}

void DeployedViewRegistry::set_status(const std::string& name,
                                      ViewStatus status) {
  DeployedView* v = find_mutable(name);
  if (v == nullptr) throw ExecError("unknown deployed view '" + name + "'");
  v->status = status;
}

void DeployedViewRegistry::set_all(ViewStatus status) {
  for (DeployedView& v : views_) v.status = status;
}

std::vector<std::string> DeployedViewRegistry::mark_stale(
    const std::string& relation) {
  std::vector<std::string> flagged;
  for (DeployedView& v : views_) {
    if (v.def.relations.count(relation) == 0) continue;
    v.status = ViewStatus::kStale;
    flagged.push_back(v.def.name);
  }
  return flagged;
}

std::vector<std::string> DeployedViewRegistry::pending() const {
  std::vector<std::string> out;
  for (const DeployedView& v : views_) {
    if (v.status != ViewStatus::kValid) out.push_back(v.def.name);
  }
  return out;
}

std::vector<ViewDef> DeployedViewRegistry::matchable() const {
  std::vector<ViewDef> out;
  for (const DeployedView& v : views_) {
    if (v.status == ViewStatus::kValid) out.push_back(v.def);
  }
  return out;
}

}  // namespace mvd
