#include "src/optimizer/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "src/algebra/aggregate.hpp"
#include "src/check/implication.hpp"
#include "src/common/assert.hpp"
#include "src/common/error.hpp"

namespace mvd {

Optimizer::Optimizer(const CostModel& cost_model, OptimizerConfig config)
    : cost_model_(&cost_model), config_(config) {}

PlanPtr Optimizer::relation_unit(const QuerySpec& spec,
                                 const std::string& relation,
                                 const PlanPlacement& placement) const {
  PlanPtr plan = make_scan(cost_model_->catalog(), relation);
  if (placement.push_selections_down) {
    std::vector<ExprPtr> preds = spec.selections_on(relation);
    if (!preds.empty()) plan = make_select(plan, conj(std::move(preds)));
  }
  if (placement.push_projections_down) {
    const std::set<std::string> used = spec.used_columns(relation);
    // Keep schema order; skip the projection when it keeps everything.
    std::vector<std::string> cols;
    for (const Attribute& a : plan->output_schema().attributes()) {
      if (used.contains(a.qualified())) cols.push_back(a.qualified());
    }
    if (!cols.empty() && cols.size() < plan->output_schema().size()) {
      plan = make_project(plan, cols);
    }
  }
  return plan;
}

namespace {

// Join conjuncts of `spec` linking `placed` to `next`, removing them from
// `remaining`.
std::vector<ExprPtr> take_applicable_joins(
    std::vector<JoinPredicate>& remaining,
    const std::set<std::string>& placed, const std::string& next) {
  std::vector<ExprPtr> out;
  for (auto it = remaining.begin(); it != remaining.end();) {
    const std::string lr = it->left_relation();
    const std::string rr = it->right_relation();
    const bool connects = (placed.contains(lr) && rr == next) ||
                          (placed.contains(rr) && lr == next);
    if (connects) {
      out.push_back(it->expr());
      it = remaining.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

}  // namespace

PlanPtr Optimizer::build_plan(const QuerySpec& spec,
                              const std::vector<std::string>& order,
                              const PlanPlacement& placement) const {
  if (order.size() != spec.relations().size()) {
    throw PlanError("join order size mismatch");
  }
  for (const std::string& r : order) {
    if (std::find(spec.relations().begin(), spec.relations().end(), r) ==
        spec.relations().end()) {
      throw PlanError("join order names relation '" + r +
                      "' absent from the query");
    }
  }

  std::vector<JoinPredicate> remaining = spec.joins();
  std::set<std::string> placed{order.front()};
  PlanPtr plan = relation_unit(spec, order.front(), placement);

  for (std::size_t i = 1; i < order.size(); ++i) {
    PlanPtr right = relation_unit(spec, order[i], placement);
    std::vector<ExprPtr> preds =
        take_applicable_joins(remaining, placed, order[i]);
    ExprPtr joined = preds.empty() ? lit(Value::boolean(true))
                                   : conj(std::move(preds));
    plan = make_join(std::move(plan), std::move(right), joined);
    placed.insert(order[i]);
  }
  MVD_ASSERT_MSG(remaining.empty(), "unapplied join predicates remain");

  std::vector<ExprPtr> top;
  if (!placement.push_selections_down) {
    for (const ExprPtr& s : spec.selections()) top.push_back(s);
  } else {
    for (const ExprPtr& s : spec.multi_relation_selections()) top.push_back(s);
  }
  if (!top.empty()) plan = make_select(std::move(plan), conj(std::move(top)));
  return apply_query_output(std::move(plan), spec);
}

std::vector<std::string> Optimizer::optimal_join_order(
    const QuerySpec& spec) const {
  const std::vector<std::string>& rels = spec.relations();
  const std::size_t n = rels.size();
  if (n == 1) return rels;
  if (n > 20) throw PlanError("too many relations for subset-DP join search");

  const PlanPlacement pushed{true, true};

  // Adjacency over relation indices.
  std::vector<std::uint32_t> adjacent(n, 0);
  auto index_of = [&](const std::string& r) {
    return static_cast<std::size_t>(
        std::find(rels.begin(), rels.end(), r) - rels.begin());
  };
  for (const JoinPredicate& j : spec.joins()) {
    const std::size_t a = index_of(j.left_relation());
    const std::size_t b = index_of(j.right_relation());
    adjacent[a] |= 1u << b;
    adjacent[b] |= 1u << a;
  }

  struct State {
    double cost = std::numeric_limits<double>::infinity();
    std::vector<std::string> order;
  };
  std::vector<State> dp(std::size_t{1} << n);

  for (std::size_t r = 0; r < n; ++r) {
    State& s = dp[std::size_t{1} << r];
    s.order = {rels[r]};
    // Cost of the unit alone: producing its (selected/projected) result.
    s.cost = cost_model_->full_cost(relation_unit(spec, rels[r], pushed));
  }

  const std::size_t full = (std::size_t{1} << n) - 1;
  for (std::size_t mask = 1; mask <= full; ++mask) {
    if (!std::isfinite(dp[mask].cost)) continue;
    if (mask == full) break;
    // Which relations may extend this set?
    std::uint32_t frontier = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (mask & (std::size_t{1} << r)) frontier |= adjacent[r];
    }
    frontier &= ~static_cast<std::uint32_t>(mask);
    const bool use_connected = config_.connected_subsets_only && frontier != 0;
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t bit = std::size_t{1} << r;
      if (mask & bit) continue;
      if (use_connected && !(frontier & bit)) continue;
      std::vector<std::string> order = dp[mask].order;
      order.push_back(rels[r]);
      // Score the prefix: cost of the partial left-deep join tree
      // (build_plan requires all relations, so construct the prefix here).
      std::vector<JoinPredicate> remaining = spec.joins();
      std::set<std::string> placed{order.front()};
      PlanPtr plan = relation_unit(spec, order.front(), pushed);
      for (std::size_t i = 1; i < order.size(); ++i) {
        PlanPtr right = relation_unit(spec, order[i], pushed);
        std::vector<ExprPtr> preds =
            take_applicable_joins(remaining, placed, order[i]);
        ExprPtr joined = preds.empty() ? lit(Value::boolean(true))
                                       : conj(std::move(preds));
        plan = make_join(std::move(plan), std::move(right), joined);
        placed.insert(order[i]);
      }
      const double cost = cost_model_->full_cost(plan);
      State& next = dp[mask | bit];
      if (cost < next.cost) {
        next.cost = cost;
        next.order = std::move(order);
      }
    }
  }

  if (!std::isfinite(dp[full].cost)) {
    // Disconnected graph with connected_subsets_only pruning every path:
    // rerun allowing cross joins.
    Optimizer relaxed(*cost_model_, OptimizerConfig{false});
    return relaxed.optimal_join_order(spec);
  }
  return dp[full].order;
}

PlanPtr Optimizer::optimize(const QuerySpec& spec) const {
  return simplify_plan_predicates(
      build_plan(spec, optimal_join_order(spec), PlanPlacement{true, true}));
}

PlanPtr Optimizer::optimize_pushed_up(const QuerySpec& spec) const {
  return build_plan(spec, optimal_join_order(spec),
                    PlanPlacement{false, false});
}

namespace {

ExprPtr literal_false() { return lit(Value::boolean(false)); }

bool is_bool_literal(const ExprPtr& e, bool value) {
  if (e->kind() != ExprKind::kLiteral) return false;
  const Value& v = static_cast<const LiteralExpr&>(*e).value();
  return v.type() == ValueType::kBool && v.as_bool() == value;
}

/// Facts guaranteed on rows flowing out of `plan`, collected from the
/// select chain at its top (selects are schema-preserving, so every
/// predicate binds against plan->output_schema()).
void chain_facts(const PlanPtr& plan, PredicateFacts& facts) {
  const LogicalOp* n = plan.get();
  while (n->kind() == OpKind::kSelect) {
    const auto& sel = static_cast<const SelectOp&>(*n);
    for (const ExprPtr& c : conjuncts_of(sel.predicate())) facts.add(c);
    n = n->children()[0].get();
  }
}

struct Simplifier {
  std::map<const LogicalOp*, PlanPtr> memo;  // keeps shared nodes shared

  PlanPtr simplify(const PlanPtr& plan) {
    const auto hit = memo.find(plan.get());
    if (hit != memo.end()) return hit->second;
    PlanPtr out = rewrite(plan);
    memo.emplace(plan.get(), out);
    return out;
  }

  PlanPtr rewrite(const PlanPtr& plan) {
    switch (plan->kind()) {
      case OpKind::kScan:
        return plan;
      case OpKind::kSelect: {
        const auto& sel = static_cast<const SelectOp&>(*plan);
        PlanPtr child = simplify(plan->children()[0]);
        PredicateFacts facts(child->output_schema());
        chain_facts(child, facts);
        bool changed = child != plan->children()[0];
        std::vector<ExprPtr> kept;
        for (const ExprPtr& raw : conjuncts_of(sel.predicate())) {
          const ExprPtr c = fold_constants(raw);
          if (c != raw) changed = true;
          if (is_bool_literal(c, true)) {
            changed = true;
            continue;
          }
          if (is_bool_literal(c, false)) {
            return make_select(std::move(child), literal_false());
          }
          if (c->kind() != ExprKind::kLiteral && facts.entails(c)) {
            changed = true;
            continue;
          }
          facts.add(c);
          kept.push_back(c);
        }
        if (facts.contradictory()) {
          return make_select(std::move(child), literal_false());
        }
        if (kept.empty()) return child;  // every conjunct was a no-op here
        if (!changed) return plan;
        return make_select(std::move(child), conj(std::move(kept)));
      }
      case OpKind::kProject: {
        const auto& proj = static_cast<const ProjectOp&>(*plan);
        PlanPtr child = simplify(plan->children()[0]);
        if (child == plan->children()[0]) return plan;
        return make_project(std::move(child), proj.columns());
      }
      case OpKind::kJoin: {
        const auto& join = static_cast<const JoinOp&>(*plan);
        PlanPtr left = simplify(plan->children()[0]);
        PlanPtr right = simplify(plan->children()[1]);
        bool changed =
            left != plan->children()[0] || right != plan->children()[1];
        std::vector<ExprPtr> kept;
        bool contradiction = false;
        for (const ExprPtr& raw : conjuncts_of(join.predicate())) {
          const ExprPtr c = fold_constants(raw);
          if (c != raw) changed = true;
          if (is_bool_literal(c, true)) {
            changed = true;
            continue;
          }
          if (is_bool_literal(c, false)) {
            contradiction = true;
            break;
          }
          kept.push_back(c);
        }
        if (contradiction) {
          return make_join(std::move(left), std::move(right), literal_false());
        }
        if (!changed) return plan;
        // A join needs a predicate; an all-true one degenerates to the
        // cross-join literal the optimizer itself uses.
        ExprPtr pred = kept.empty() ? lit(Value::boolean(true))
                                    : conj(std::move(kept));
        return make_join(std::move(left), std::move(right), std::move(pred));
      }
      case OpKind::kAggregate: {
        const auto& agg = static_cast<const AggregateOp&>(*plan);
        PlanPtr child = simplify(plan->children()[0]);
        if (child == plan->children()[0]) return plan;
        return make_aggregate(std::move(child), agg.group_by(),
                              agg.aggregates());
      }
    }
    return plan;
  }
};

}  // namespace

PlanPtr simplify_plan_predicates(const PlanPtr& plan) {
  Simplifier s;
  return s.simplify(plan);
}

}  // namespace mvd
