#include "src/optimizer/view_rewrite.hpp"

#include <algorithm>
#include <string_view>

#include "src/check/implication.hpp"
#include "src/optimizer/optimizer.hpp"

namespace mvd {

namespace {

/// Count aggregate nodes anywhere in the tree.
std::size_t count_aggregates(const PlanPtr& plan) {
  std::size_t n = plan->kind() == OpKind::kAggregate ? 1 : 0;
  for (const PlanPtr& c : plan->children()) n += count_aggregates(c);
  return n;
}

/// Collect relations and base-space conjuncts below any aggregation.
/// Returns false (with a reason) on shapes outside the fragment.
bool walk_spj(const PlanPtr& plan, ViewDef& def, std::string& reason) {
  switch (plan->kind()) {
    case OpKind::kScan:
      def.relations.insert(static_cast<const ScanOp&>(*plan).relation());
      return true;
    case OpKind::kSelect: {
      const auto& sel = static_cast<const SelectOp&>(*plan);
      for (const ExprPtr& c : conjuncts_of(sel.predicate())) {
        def.conjuncts.push_back(c);
      }
      return walk_spj(plan->children()[0], def, reason);
    }
    case OpKind::kProject:
      return walk_spj(plan->children()[0], def, reason);
    case OpKind::kJoin: {
      const auto& join = static_cast<const JoinOp&>(*plan);
      if (join.predicate() != nullptr) {
        for (const ExprPtr& c : conjuncts_of(join.predicate())) {
          def.conjuncts.push_back(c);
        }
      }
      return walk_spj(join.left(), def, reason) &&
             walk_spj(join.right(), def, reason);
    }
    case OpKind::kAggregate:
      reason = "interior aggregate";
      return false;
  }
  reason = "unknown operator";
  return false;
}

bool contains_all(const Schema& schema, const std::vector<std::string>& cols) {
  return std::all_of(cols.begin(), cols.end(), [&](const std::string& c) {
    return schema.contains(c);
  });
}

/// Every column of `e` is a grouping column of the view (the only
/// base-space columns with per-row meaning in an aggregate view's rows).
bool over_group_columns(const ExprPtr& e,
                        const std::vector<std::string>& group_by) {
  for (const std::string& c : columns_of(e)) {
    if (std::find(group_by.begin(), group_by.end(), c) == group_by.end()) {
      return false;
    }
  }
  return true;
}

/// The stored aggregate of `view` that can answer `want`, if any. COUNT
/// matches any stored COUNT (no NULLs in the engine, so COUNT(x) ==
/// COUNT(*)); the rest match on (fn, input column).
const AggSpec* stored_aggregate(const ViewDef& view, const AggSpec& want) {
  for (const AggSpec& have : view.aggregates) {
    if (have.fn != want.fn) continue;
    if (want.fn == AggFn::kCount || have.column == want.column) {
      if (view.output.contains(have.alias)) return &have;
    }
  }
  return nullptr;
}

}  // namespace

ViewDef extract_view_def(const std::string& name, const PlanPtr& plan,
                         double stored_blocks) {
  ViewDef def;
  def.name = name;
  def.output = plan->output_schema();
  def.stored_blocks = stored_blocks;

  const std::size_t n_aggs = count_aggregates(plan);
  PlanPtr spine = plan;
  if (n_aggs > 1) {
    def.unmatchable_reason = "multiple aggregates";
    return def;
  }
  if (n_aggs == 1) {
    // Peel the post-aggregation spine: projects only reorder/drop stored
    // columns (captured by def.output); selects over grouping columns
    // commute with the gamma and fold into the base-space conjuncts.
    std::vector<ExprPtr> post_selects;
    while (spine->kind() != OpKind::kAggregate) {
      if (spine->kind() == OpKind::kProject) {
        spine = spine->children()[0];
        continue;
      }
      if (spine->kind() == OpKind::kSelect) {
        const auto& sel = static_cast<const SelectOp&>(*spine);
        for (const ExprPtr& c : conjuncts_of(sel.predicate())) {
          post_selects.push_back(c);
        }
        spine = spine->children()[0];
        continue;
      }
      def.unmatchable_reason = "aggregate below a " +
                               to_string(spine->kind()) + " operator";
      return def;
    }
    const auto& agg = static_cast<const AggregateOp&>(*spine);
    def.has_aggregation = true;
    def.group_by = agg.group_by();
    def.aggregates = agg.aggregates();
    for (const ExprPtr& c : post_selects) {
      if (!over_group_columns(c, def.group_by)) {
        // HAVING-style filter over an aggregate output: not expressible
        // in the base space, so the view cannot be summarized.
        def.unmatchable_reason = "selection over aggregate output";
        return def;
      }
      def.conjuncts.push_back(c);
    }
    spine = spine->children()[0];
  }
  std::string reason;
  if (!walk_spj(spine, def, reason)) {
    def.has_aggregation = false;
    def.unmatchable_reason = reason;
    return def;
  }
  def.matchable = true;
  return def;
}

Schema joint_base_schema(const Catalog& catalog,
                         const std::set<std::string>& relations) {
  Schema joint;
  for (const std::string& r : relations) {
    // make_scan qualifies attribute sources (catalog schemas leave them
    // empty), so same-named columns of different relations stay distinct.
    joint = Schema::concat(joint, make_scan(catalog, r)->output_schema());
  }
  return joint;
}

std::optional<ViewMatch> match_query_to_view(const QuerySpec& query,
                                             const ViewDef& view,
                                             const Catalog& catalog,
                                             std::string* why) {
  const auto refuse = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return std::nullopt;
  };

  if (!view.matchable) return refuse("view: " + view.unmatchable_reason);
  const std::set<std::string> query_rels(query.relations().begin(),
                                         query.relations().end());
  if (query_rels != view.relations) return refuse("relation sets differ");
  if (query.has_aggregation() != view.has_aggregation &&
      view.has_aggregation) {
    return refuse("SPJ query over an aggregate view");
  }

  const Schema joint = joint_base_schema(catalog, view.relations);
  std::vector<ExprPtr> query_conjuncts;
  for (const JoinPredicate& j : query.joins()) {
    query_conjuncts.push_back(j.expr());
  }
  for (const ExprPtr& s : query.selections()) query_conjuncts.push_back(s);
  ExprPtr query_pred = conj(std::move(query_conjuncts));
  ExprPtr view_pred = conj(std::vector<ExprPtr>(view.conjuncts));

  // Containment: every row the query wants satisfies the view predicate,
  // so it survived into the stored view.
  if (!implies(query_pred, view_pred, joint)) {
    return refuse("containment not proved");
  }

  // Residual: the query conjuncts the view predicate does not already
  // guarantee. sigma(residual) on the stored rows recovers exactly
  // sigma(query_pred) of the joint space: residual AND view_pred entails
  // every query conjunct, and query_pred entails both parts.
  PredicateFacts view_facts(view_pred, joint);
  std::vector<ExprPtr> residual;
  if (query_pred != nullptr) {
    for (const ExprPtr& c : conjuncts_of(normalize(query_pred))) {
      if (!view_facts.entails(c)) residual.push_back(c);
    }
  }
  for (const ExprPtr& c : residual) {
    for (const std::string& name : columns_of(c)) {
      if (!view.output.contains(name)) {
        return refuse("residual column '" + name + "' not stored");
      }
    }
    if (view.has_aggregation && !over_group_columns(c, view.group_by)) {
      return refuse("residual finer than the view's grouping");
    }
  }

  ViewMatch match;
  match.view = view.name;
  match.stored_blocks = view.stored_blocks;
  match.query_pred = query_pred;
  match.view_pred = view_pred;
  match.joint = joint;
  match.residual = residual;

  PlanPtr plan = make_named_scan(view.name, view.output);
  if (!residual.empty()) {
    plan = make_select(plan, conj(std::vector<ExprPtr>(residual)));
  }

  if (!query.has_aggregation()) {
    // SPJ over SPJ: residual projection.
    if (!contains_all(view.output, query.projection())) {
      return refuse("projection column not stored");
    }
    plan = make_project(plan, query.projection());
  } else if (!view.has_aggregation) {
    // The query's own gamma over the view's raw rows.
    if (!contains_all(view.output, query.group_by())) {
      return refuse("grouping column not stored");
    }
    for (const AggSpec& a : query.aggregates()) {
      if (!a.column.empty() && !view.output.contains(a.column)) {
        return refuse("aggregate input '" + a.column + "' not stored");
      }
    }
    plan = make_aggregate(plan, query.group_by(),
                          std::vector<AggSpec>(query.aggregates()));
  } else {
    // Aggregate over aggregate.
    if (!contains_all(view.output, query.group_by())) {
      return refuse("grouping column not stored");
    }
    const std::set<std::string> qg(query.group_by().begin(),
                                   query.group_by().end());
    const std::set<std::string> vg(view.group_by.begin(),
                                   view.group_by.end());
    if (!std::includes(vg.begin(), vg.end(), qg.begin(), qg.end())) {
      return refuse("query grouping coarser than stored along no axis");
    }
    if (qg == vg) {
      // Pass-through: the stored rows are the query's groups; project the
      // stored aggregate columns into the query's output order.
      std::vector<std::string> out_cols(query.group_by());
      for (const AggSpec& a : query.aggregates()) {
        const AggSpec* have = stored_aggregate(view, a);
        if (have == nullptr) {
          return refuse("aggregate " + a.to_string() + " not stored");
        }
        out_cols.push_back(have->alias);
      }
      plan = make_project(plan, out_cols);
    } else {
      // Rollup from the finer grouping: SUM of sums, MIN of mins, MAX of
      // maxes, SUM_INT of counts. AVG cannot be re-derived (no arithmetic
      // expressions in the algebra).
      std::vector<AggSpec> rolled;
      for (const AggSpec& a : query.aggregates()) {
        AggFn roll_fn = a.fn;
        AggFn stored_fn = a.fn;
        switch (a.fn) {
          case AggFn::kCount:
            roll_fn = AggFn::kSumInt;
            break;
          case AggFn::kSum:
          case AggFn::kMin:
          case AggFn::kMax:
          case AggFn::kSumInt:
            break;
          case AggFn::kAvg:
            return refuse("avg cannot roll up from a finer grouping");
        }
        AggSpec probe = a;
        probe.fn = stored_fn;
        const AggSpec* have = stored_aggregate(view, probe);
        if (have == nullptr) {
          return refuse("aggregate " + a.to_string() + " not stored");
        }
        rolled.push_back(AggSpec{roll_fn, have->alias, a.alias});
      }
      plan = make_aggregate(plan, query.group_by(), std::move(rolled));
    }
  }

  match.plan = simplify_plan_predicates(plan);
  return match;
}

std::string refusal_code(const std::string& reason) {
  const auto starts = [&](std::string_view prefix) {
    return reason.rfind(prefix, 0) == 0;
  };
  if (starts("relation sets differ")) return "relations";
  if (starts("containment not proved")) return "containment";
  if (starts("residual column")) return "residual-column";
  if (starts("residual finer")) return "residual-grouping";
  if (starts("projection column not stored")) return "projection";
  if (starts("grouping column not stored")) return "grouping";
  if (starts("aggregate input")) return "aggregate-input";
  if (starts("aggregate ")) return "aggregate";
  if (starts("SPJ query over an aggregate view")) return "spj-over-aggregate";
  if (starts("avg cannot roll up")) return "avg-rollup";
  if (starts("query grouping coarser")) return "grouping-axis";
  if (starts("view: ")) return "unmatchable";
  return "other";
}

std::optional<ViewMatch> best_view_match(const QuerySpec& query,
                                         const std::vector<ViewDef>& views,
                                         const Catalog& catalog) {
  std::optional<ViewMatch> best;
  for (const ViewDef& v : views) {
    auto m = match_query_to_view(query, v, catalog);
    if (!m.has_value()) continue;
    if (!best.has_value() || m->stored_blocks < best->stored_blocks ||
        (m->stored_blocks == best->stored_blocks && m->view < best->view)) {
      best = std::move(m);
    }
  }
  return best;
}

}  // namespace mvd
