// Single-query optimization: choosing a join order and placing selections
// and projections.
//
// The paper's Figure 4 needs, per query, an *individual optimal plan* whose
// select/project operations can be pushed up (leaving a pure join pattern
// over base relations) and later pushed back down across the merged MVPP.
// This module provides both directions:
//   - optimize(spec): best left-deep join order by dynamic programming over
//     connected subsets, with selections and projections pushed down — the
//     plan of Figure 5 after re-pushdown (Figure 8 shape for one query).
//   - build_plan(spec, order, placement): deterministic plan construction
//     for a given relation order with selects/projects either pushed down
//     or held above the joins (the Figure 5 "pushed-up" shape).
#pragma once

#include <vector>

#include "src/algebra/logical_plan.hpp"
#include "src/algebra/query_spec.hpp"
#include "src/cost/cost_model.hpp"

namespace mvd {

/// Where selections/projections are placed when building a plan.
struct PlanPlacement {
  bool push_selections_down = true;
  bool push_projections_down = true;
};

struct OptimizerConfig {
  /// Consider only join-connected expansions during DP; when a query's join
  /// graph is disconnected, cross joins are appended between components.
  bool connected_subsets_only = true;
};

class Optimizer {
 public:
  Optimizer(const CostModel& cost_model, OptimizerConfig config = {});

  /// The scan (+ pushed selections/projections) leaf plan for `relation`.
  PlanPtr relation_unit(const QuerySpec& spec, const std::string& relation,
                        const PlanPlacement& placement) const;

  /// Deterministic plan for a given relation order (left-deep, join
  /// conjuncts applied as soon as both sides are present, multi-relation
  /// selections above the joins, final projection on top).
  PlanPtr build_plan(const QuerySpec& spec,
                     const std::vector<std::string>& order,
                     const PlanPlacement& placement) const;

  /// Best left-deep join order by subset DP under full_cost().
  std::vector<std::string> optimal_join_order(const QuerySpec& spec) const;

  /// optimal_join_order + build_plan with everything pushed down.
  PlanPtr optimize(const QuerySpec& spec) const;

  /// The same optimal order built with selections/projections held above
  /// the join pattern — the paper's step-2 "pushed-up" individual plan.
  PlanPtr optimize_pushed_up(const QuerySpec& spec) const;

  const CostModel& cost_model() const { return *cost_model_; }

 private:
  const CostModel* cost_model_;
  OptimizerConfig config_;
};

/// Predicate simplification over a built plan, using the mvcheck
/// implication oracle (src/check/implication):
///   - conjuncts are constant-folded; literal-true conjuncts drop;
///   - a select conjunct entailed by the select chain directly below it
///     drops (it can never filter anything there);
///   - a select whose every conjunct drops is removed entirely;
///   - a statically-false select (or join) keeps a single literal-false
///     predicate, so no per-row comparisons run at all.
/// Shared DAG nodes stay shared; an unchanged subtree returns the same
/// PlanPtr (callers can detect "no change" by pointer equality).
/// optimize() applies this to its output.
PlanPtr simplify_plan_predicates(const PlanPtr& plan);

}  // namespace mvd
