// View subsumption matching and compensation-plan synthesis — the
// rewriting core of mvserve (src/serve).
//
// A deployed materialized view is summarized as a ViewDef: the base
// relations it joins, every join/selection conjunct expressed over the
// joint base space (the cross product of those relations), its stored
// output schema, and its aggregation shape. An ad-hoc QuerySpec matches a
// view when
//   * the relation sets are equal (no lossless-join reasoning — an extra
//     or missing join refuses),
//   * the query predicate implies the view predicate (the src/check
//     interval-domain oracle: every row the query wants, the view kept),
//   * the aggregation shapes are compatible (see below), and
//   * every column the compensation needs survived the view's projection.
// The compensation plan is a scan of the stored view, a residual
// selection (the query conjuncts not already entailed by the view's
// predicate), and a residual projection/aggregation. It is an ordinary
// logical plan: all three engines run it, bit-identically.
//
// Aggregation compatibility, where G() is the grouping column set:
//   query SPJ  over SPJ view  — residual sigma + projection.
//   query agg  over SPJ view  — residual sigma + the query's own gamma.
//   query agg  over agg view  — pass-through when G(q) == G(v) and every
//     query aggregate is stored by the view (projection of stored
//     columns), else rollup when G(q) is a subset of G(v): SUM re-sums
//     stored sums, MIN/MAX re-extremize, COUNT sums stored counts through
//     AggFn::kSumInt (type-preserving). AVG is only served pass-through —
//     re-deriving it from a finer grouping needs arithmetic the algebra
//     does not have. Residual conjuncts over an aggregate view must
//     reference grouping columns only (they filter whole groups; anything
//     finer no longer exists in the stored rows).
//   query SPJ  over agg view  — refused (raw rows are gone).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/algebra/query_spec.hpp"
#include "src/catalog/catalog.hpp"

namespace mvd {

/// A deployed view's matching summary, extracted from its MVPP node's
/// annotated base-relation plan (extract_view_def).
struct ViewDef {
  /// Stored table name (the MVPP node name).
  std::string name;
  /// Base relations beneath the view.
  std::set<std::string> relations;
  /// Every join + selection conjunct, over the joint base space.
  std::vector<ExprPtr> conjuncts;
  /// The stored table's schema (attribute sources identify base columns).
  Schema output;

  bool has_aggregation = false;
  std::vector<std::string> group_by;  // qualified
  std::vector<AggSpec> aggregates;

  /// Stored size in blocks, for cheapest-view ranking (actual deployed
  /// size when known, the MVPP estimate otherwise).
  double stored_blocks = 0;

  /// False when the plan shape is outside the matchable fragment
  /// (interior aggregates, HAVING-style selects over aggregate outputs,
  /// joins above an aggregate); such views are deployed and refreshed
  /// normally but never serve ad-hoc queries.
  bool matchable = false;
  std::string unmatchable_reason;
};

/// Summarize a view's base-relation plan (an MVPP node's annotated expr)
/// for matching. `stored_blocks` seeds the ranking field.
ViewDef extract_view_def(const std::string& name, const PlanPtr& plan,
                         double stored_blocks);

/// A successful rewrite: the compensation plan plus the evidence that
/// mvlint's serve/rewrite-consistent rule re-checks.
struct ViewMatch {
  std::string view;
  PlanPtr plan;  // scan(view) -> residual sigma -> residual pi/gamma
  double stored_blocks = 0;
  /// Conjunction of the query's join + selection conjuncts.
  ExprPtr query_pred;
  /// Conjunction of the view's conjuncts.
  ExprPtr view_pred;
  /// The joint base schema both predicates are read over.
  Schema joint;
  /// Query conjuncts not entailed by the view predicate (applied by the
  /// compensation sigma).
  std::vector<ExprPtr> residual;
};

/// The joint base schema of a relation set: catalog schemas concatenated
/// in sorted name order (column references are qualified, so any fixed
/// order works; sorted keeps it deterministic).
Schema joint_base_schema(const Catalog& catalog,
                         const std::set<std::string>& relations);

/// Try to answer `query` from `view`. Returns the compensation on
/// success; on refusal, `why` (when given) receives a short reason.
std::optional<ViewMatch> match_query_to_view(const QuerySpec& query,
                                             const ViewDef& view,
                                             const Catalog& catalog,
                                             std::string* why = nullptr);

/// Bucket a match_query_to_view refusal reason into a stable short code
/// for tallying ("relations", "containment", "projection", ...;
/// "other" for text no bucket claims). The free-text reasons embed
/// column/aggregate names, so aggregation has to go through these codes.
std::string refusal_code(const std::string& reason);

/// Match against every view and keep the cheapest (fewest stored blocks,
/// name as the tie-break). Views are pre-filtered by the caller (mvserve
/// passes only VALID ones).
std::optional<ViewMatch> best_view_match(const QuerySpec& query,
                                         const std::vector<ViewDef>& views,
                                         const Catalog& catalog);

}  // namespace mvd
