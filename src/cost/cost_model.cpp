#include "src/cost/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"

namespace mvd {

double CostModelConfig::type_width(ValueType t) const {
  switch (t) {
    case ValueType::kInt64: return width_int64;
    case ValueType::kDouble: return width_double;
    case ValueType::kString: return width_string;
    case ValueType::kBool: return width_bool;
    case ValueType::kDate: return width_date;
  }
  MVD_ASSERT(false);
  return 8;
}

double NodeEstimate::distinct_of(const std::string& column,
                                 double fallback) const {
  auto it = distinct.find(column);
  const double d = it == distinct.end() ? fallback : it->second;
  return std::max(1.0, std::min(d, std::max(rows, 1.0)));
}

CostModel::CostModel(const Catalog& catalog, CostModelConfig config)
    : catalog_(&catalog), config_(config) {
  if (!(config_.block_size_bytes > 0)) {
    throw PlanError("block_size_bytes must be positive");
  }
}

bool is_pure_equality(const ExprPtr& predicate) {
  if (predicate == nullptr) return false;
  switch (predicate->kind()) {
    case ExprKind::kComparison:
      return static_cast<const ComparisonExpr&>(*predicate).op() ==
             CompareOp::kEq;
    case ExprKind::kAnd: {
      const auto& b = static_cast<const BoolExpr&>(*predicate);
      return std::all_of(b.operands().begin(), b.operands().end(),
                         is_pure_equality);
    }
    default:
      return false;
  }
}

double CostModel::blocks_for(double rows, double width) const {
  if (rows <= 0) return 0;
  const double bf = std::max(1.0, std::floor(config_.block_size_bytes /
                                             std::max(width, 1.0)));
  return std::max(1.0, std::ceil(rows / bf));
}

double CostModel::scan_op_cost(double input_blocks, bool pure_equality) const {
  if (pure_equality && config_.equality_select_half_scan) {
    return input_blocks / 2.0;
  }
  return input_blocks;
}

double CostModel::join_op_cost(double left_blocks, double right_blocks) const {
  const double outer = std::min(left_blocks, right_blocks);
  const double inner = std::max(left_blocks, right_blocks);
  return outer + outer * inner;
}

NodeEstimate CostModel::estimate_scan(const ScanOp& scan) const {
  NodeEstimate est;
  const std::string& rel = scan.relation();
  if (!catalog_->has_relation(rel)) {
    // Named scans of non-catalog relations (materialized views) are
    // estimated by whoever created them; reaching here is a logic error.
    throw PlanError("cannot estimate scan of non-catalog relation '" + rel +
                    "'");
  }
  const RelationStats& stats = catalog_->stats(rel);
  est.rows = stats.rows;
  est.blocks = stats.blocks.has_value() ? *stats.blocks
                                        : catalog_->blocks_for_rows(stats.rows);
  est.bases.insert(rel);
  // Implied width: respect explicit block counts so that intermediate
  // results inherit realistic densities; otherwise sum the type widths.
  if (est.rows > 0 && est.blocks > 0 && stats.blocks.has_value()) {
    est.width = config_.block_size_bytes / (est.rows / est.blocks);
  } else {
    est.width = 0;
    for (const Attribute& a : scan.output_schema().attributes()) {
      est.width += config_.type_width(a.type);
    }
  }
  for (const Attribute& a : scan.output_schema().attributes()) {
    const ColumnStats* cs = stats.column(a.name);
    if (cs != nullptr && cs->distinct.has_value()) {
      est.distinct[a.qualified()] = *cs->distinct;
    } else {
      est.distinct[a.qualified()] = est.rows;  // assume near-unique
    }
    if (cs != nullptr && cs->min_value.has_value() &&
        cs->max_value.has_value()) {
      est.ranges[a.qualified()] = {*cs->min_value, *cs->max_value};
    }
  }
  return est;
}

double CostModel::comparison_selectivity(const ComparisonExpr& cmp,
                                         const NodeEstimate& input) const {
  const ExprPtr& lhs = cmp.lhs();
  const ExprPtr& rhs = cmp.rhs();

  // column vs column (same input — a theta-selection, not a join here).
  if (lhs->kind() == ExprKind::kColumn && rhs->kind() == ExprKind::kColumn) {
    const auto& lc = static_cast<const ColumnExpr&>(*lhs);
    const auto& rc = static_cast<const ColumnExpr&>(*rhs);
    if (cmp.op() == CompareOp::kEq) {
      const double dl = input.distinct_of(lc.name(), input.rows);
      const double dr = input.distinct_of(rc.name(), input.rows);
      return 1.0 / std::max({dl, dr, 1.0});
    }
    return config_.default_range_selectivity;
  }

  // Normalize to column-op-literal.
  const ColumnExpr* column = nullptr;
  const LiteralExpr* literal = nullptr;
  CompareOp op = cmp.op();
  if (lhs->kind() == ExprKind::kColumn && rhs->kind() == ExprKind::kLiteral) {
    column = &static_cast<const ColumnExpr&>(*lhs);
    literal = &static_cast<const LiteralExpr&>(*rhs);
  } else if (lhs->kind() == ExprKind::kLiteral &&
             rhs->kind() == ExprKind::kColumn) {
    column = &static_cast<const ColumnExpr&>(*rhs);
    literal = &static_cast<const LiteralExpr&>(*lhs);
    op = flip(op);
  } else {
    // literal-vs-literal or anything exotic: neutral default.
    return config_.default_range_selectivity;
  }

  switch (op) {
    case CompareOp::kEq: {
      const double d =
          input.distinct_of(column->name(), 1.0 / config_.default_eq_selectivity);
      return 1.0 / d;
    }
    case CompareOp::kNe: {
      const double d =
          input.distinct_of(column->name(), 1.0 / config_.default_eq_selectivity);
      return 1.0 - 1.0 / d;
    }
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe: {
      // Interpolate against the column's range when known and numeric.
      auto it = input.ranges.find(column->name());
      if (it != input.ranges.end() && is_numeric(literal->value().type())) {
        const auto [lo, hi] = it->second;
        if (hi > lo) {
          const double x =
              std::clamp(literal->value().as_double(), lo, hi);
          const double below = (x - lo) / (hi - lo);
          const double frac =
              (op == CompareOp::kLt || op == CompareOp::kLe) ? below
                                                             : 1.0 - below;
          return std::clamp(frac, 0.0, 1.0);
        }
      }
      return config_.default_range_selectivity;
    }
  }
  MVD_ASSERT(false);
  return 1.0;
}

double CostModel::selectivity(const ExprPtr& predicate,
                              const NodeEstimate& input) const {
  if (predicate == nullptr) return 1.0;
  switch (predicate->kind()) {
    case ExprKind::kLiteral: {
      const auto& l = static_cast<const LiteralExpr&>(*predicate);
      if (l.value().type() == ValueType::kBool) {
        return l.value().as_bool() ? 1.0 : 0.0;
      }
      return 1.0;
    }
    case ExprKind::kComparison:
      return comparison_selectivity(
          static_cast<const ComparisonExpr&>(*predicate), input);
    case ExprKind::kAnd: {
      double s = 1.0;
      for (const auto& op : static_cast<const BoolExpr&>(*predicate).operands()) {
        s *= selectivity(op, input);
      }
      return s;
    }
    case ExprKind::kOr: {
      double pass = 1.0;
      for (const auto& op : static_cast<const BoolExpr&>(*predicate).operands()) {
        pass *= 1.0 - selectivity(op, input);
      }
      return 1.0 - pass;
    }
    case ExprKind::kNot:
      return 1.0 - selectivity(
                       static_cast<const NotExpr&>(*predicate).operand(), input);
    case ExprKind::kColumn:
      return config_.default_range_selectivity;
  }
  MVD_ASSERT(false);
  return 1.0;
}

NodeEstimate CostModel::estimate_select(const SelectOp& op) const {
  NodeEstimate est = estimate(op.children()[0]);
  const double s = selectivity(op.predicate(), est);
  est.rows *= s;
  est.selection_factor *= s;
  est.blocks = blocks_for(est.rows, est.width);
  for (auto& [col, d] : est.distinct) {
    d = std::min(d, std::max(est.rows, 1.0));
  }
  // An equality pin (col = literal) collapses that column to one value.
  for (const ExprPtr& c : conjuncts_of(op.predicate())) {
    if (auto* ce = dynamic_cast<const ComparisonExpr*>(c.get());
        ce != nullptr && ce->op() == CompareOp::kEq) {
      const Expr* colside = nullptr;
      if (ce->lhs()->kind() == ExprKind::kColumn &&
          ce->rhs()->kind() == ExprKind::kLiteral) {
        colside = ce->lhs().get();
      } else if (ce->rhs()->kind() == ExprKind::kColumn &&
                 ce->lhs()->kind() == ExprKind::kLiteral) {
        colside = ce->rhs().get();
      }
      if (colside != nullptr) {
        est.distinct[static_cast<const ColumnExpr*>(colside)->name()] = 1.0;
      }
    }
  }
  return est;
}

NodeEstimate CostModel::estimate_project(const ProjectOp& op) const {
  NodeEstimate est = estimate(op.children()[0]);
  // Duplicate elimination is not modeled (SQL bag semantics); width shrinks.
  double width = 0;
  for (const Attribute& a : op.output_schema().attributes()) {
    width += config_.type_width(a.type);
  }
  // Keep the implied-width discipline: projection cannot widen tuples.
  est.width = std::min(est.width > 0 ? est.width : width, width);
  if (est.width <= 0) est.width = width;
  est.blocks = blocks_for(est.rows, est.width);
  std::map<std::string, double> kept;
  std::map<std::string, std::pair<double, double>> kept_ranges;
  for (const Attribute& a : op.output_schema().attributes()) {
    if (auto it = est.distinct.find(a.qualified()); it != est.distinct.end()) {
      kept.insert(*it);
    }
    if (auto it = est.ranges.find(a.qualified()); it != est.ranges.end()) {
      kept_ranges.insert(*it);
    }
  }
  est.distinct = std::move(kept);
  est.ranges = std::move(kept_ranges);
  return est;
}

NodeEstimate CostModel::estimate_join(const JoinOp& op) const {
  const NodeEstimate left = estimate(op.left());
  const NodeEstimate right = estimate(op.right());

  NodeEstimate est;
  est.bases = left.bases;
  est.bases.insert(right.bases.begin(), right.bases.end());
  est.selection_factor = left.selection_factor * right.selection_factor;
  est.width = left.width + right.width;
  est.distinct = left.distinct;
  est.distinct.insert(right.distinct.begin(), right.distinct.end());
  est.ranges = left.ranges;
  est.ranges.insert(right.ranges.begin(), right.ranges.end());

  // Pinned join size for this base-relation set (Table 1): scale by the
  // selections already applied underneath.
  const JoinSizeOverride* pin =
      config_.use_join_overrides ? catalog_->join_size_override(est.bases)
                                 : nullptr;
  if (pin != nullptr) {
    est.rows = pin->rows * est.selection_factor;
    if (pin->blocks.has_value() && pin->rows > 0) {
      est.blocks = std::max(
          est.rows > 0 ? 1.0 : 0.0,
          std::ceil(*pin->blocks * (est.rows / pin->rows)));
      if (est.rows > 0 && est.blocks > 0) {
        est.width = config_.block_size_bytes / (est.rows / est.blocks);
      }
    } else {
      est.blocks = blocks_for(est.rows, est.width);
    }
  } else {
    double rows = left.rows * right.rows;
    double cross_selectivity = 1.0;
    for (const ExprPtr& c : conjuncts_of(op.predicate())) {
      if (auto pair = as_column_equality(c); pair.has_value()) {
        const double dl = left.distinct.contains(pair->left)
                              ? left.distinct_of(pair->left, left.rows)
                              : right.distinct_of(pair->left, right.rows);
        const double dr = left.distinct.contains(pair->right)
                              ? left.distinct_of(pair->right, left.rows)
                              : right.distinct_of(pair->right, right.rows);
        cross_selectivity /= std::max({dl, dr, 1.0});
      } else {
        NodeEstimate joint;
        joint.rows = rows;
        joint.distinct = est.distinct;
        cross_selectivity *= selectivity(c, joint);
      }
    }
    est.rows = rows * cross_selectivity;
    est.blocks = blocks_for(est.rows, est.width);
  }

  for (auto& [col, d] : est.distinct) {
    d = std::min(d, std::max(est.rows, 1.0));
  }
  return est;
}

NodeEstimate CostModel::estimate_aggregate(const AggregateOp& op) const {
  const NodeEstimate in = estimate(op.children()[0]);
  NodeEstimate est;
  est.bases = in.bases;
  est.selection_factor = in.selection_factor;
  // Output cardinality: the number of groups — the product of the group
  // columns' distinct counts, capped by the input size; one row for a
  // global aggregate.
  double groups = 1;
  for (const std::string& g : op.group_by()) {
    groups *= in.distinct_of(g, in.rows);
  }
  // A global aggregate always yields exactly one row (SQL semantics even
  // over an empty input).
  est.rows = op.group_by().empty() ? 1.0 : std::min(groups, in.rows);
  est.width = 0;
  for (const Attribute& a : op.output_schema().attributes()) {
    est.width += config_.type_width(a.type);
  }
  est.blocks = blocks_for(est.rows, est.width);
  for (const std::string& g : op.group_by()) {
    est.distinct[g] = std::min(in.distinct_of(g, in.rows),
                               std::max(est.rows, 1.0));
    if (auto it = in.ranges.find(g); it != in.ranges.end()) {
      est.ranges[g] = it->second;
    }
  }
  return est;
}

NodeEstimate CostModel::estimate(const PlanPtr& plan) const {
  MVD_ASSERT(plan != nullptr);
  switch (plan->kind()) {
    case OpKind::kScan:
      return estimate_scan(static_cast<const ScanOp&>(*plan));
    case OpKind::kSelect:
      return estimate_select(static_cast<const SelectOp&>(*plan));
    case OpKind::kProject:
      return estimate_project(static_cast<const ProjectOp&>(*plan));
    case OpKind::kJoin:
      return estimate_join(static_cast<const JoinOp&>(*plan));
    case OpKind::kAggregate:
      return estimate_aggregate(static_cast<const AggregateOp&>(*plan));
  }
  MVD_ASSERT(false);
  return {};
}

double CostModel::op_cost(const PlanPtr& plan) const {
  MVD_ASSERT(plan != nullptr);
  switch (plan->kind()) {
    case OpKind::kScan:
      return 0;
    case OpKind::kSelect: {
      const auto& s = static_cast<const SelectOp&>(*plan);
      const NodeEstimate in = estimate(plan->children()[0]);
      return scan_op_cost(in.blocks, is_pure_equality(s.predicate()));
    }
    case OpKind::kProject: {
      const NodeEstimate in = estimate(plan->children()[0]);
      return scan_op_cost(in.blocks, /*pure_equality=*/false);
    }
    case OpKind::kJoin: {
      const auto& j = static_cast<const JoinOp&>(*plan);
      const NodeEstimate l = estimate(j.left());
      const NodeEstimate r = estimate(j.right());
      return join_op_cost(l.blocks, r.blocks);
    }
    case OpKind::kAggregate: {
      // Hash aggregation: one scan of the input.
      const NodeEstimate in = estimate(plan->children()[0]);
      return scan_op_cost(in.blocks, /*pure_equality=*/false);
    }
  }
  MVD_ASSERT(false);
  return 0;
}

double CostModel::full_cost(const PlanPtr& plan) const {
  MVD_ASSERT(plan != nullptr);
  if (plan->kind() == OpKind::kScan) {
    return estimate(plan).blocks;  // a bare scan reads the relation
  }
  double total = op_cost(plan);
  for (const PlanPtr& c : plan->children()) {
    if (c->kind() != OpKind::kScan) total += full_cost(c);
  }
  return total;
}

}  // namespace mvd
