// Block-access cost model (the paper's Section 4.1 cost functions).
//
// All costs are in units of one disk-block access, matching the paper:
// selection and projection cost a scan of their input (a pure equality
// selection may stop after half the blocks, the paper's 0.25k for
// city='LA' over 0.5k-block Division); a join is a block nested-loop,
// b_outer + b_outer * b_inner, with the smaller input as the outer.
// An operator's op_cost covers producing its result from *direct* inputs;
// full_cost sums op_costs over the subtree — the paper's Ca(v).
//
// Cardinality estimation: selectivities come from per-column distinct
// counts (equality), min/max interpolation (ranges) or documented
// defaults; join sizes come from 1/max(distinct) per equi-conjunct, unless
// the catalog pins the join size of the node's base-relation set (Table 1
// overrides), in which case the pinned size is scaled by the selection
// factor already applied in the subtree.
#pragma once

#include <map>
#include <set>
#include <string>

#include "src/algebra/aggregate.hpp"
#include "src/algebra/logical_plan.hpp"
#include "src/algebra/query_spec.hpp"
#include "src/catalog/catalog.hpp"

namespace mvd {

struct CostModelConfig {
  /// Disk block capacity in bytes; used to derive blocking factors of
  /// intermediate results from (implied) tuple widths.
  double block_size_bytes = 4096;

  /// Selectivity of an equality predicate when the column has no distinct
  /// count in the catalog.
  double default_eq_selectivity = 0.1;

  /// Selectivity of a range predicate when min/max are unavailable.
  double default_range_selectivity = 1.0 / 3.0;

  /// When true, a selection whose predicate is a conjunction of equality
  /// comparisons is costed at half a scan (early-termination assumption;
  /// the paper uses it for tmp1). Range selections always pay a full scan.
  bool equality_select_half_scan = true;

  /// Honor Catalog join-size overrides (Table 1 rows for joins).
  bool use_join_overrides = true;

  /// Assumed byte width of each value type, for intermediate blocking
  /// factors. Base relations with explicit block counts imply their own
  /// widths, which propagate upward.
  double width_int64 = 8;
  double width_double = 8;
  double width_string = 24;
  double width_bool = 1;
  double width_date = 8;

  double type_width(ValueType t) const;
};

/// Estimated size and statistics of one plan node's result.
struct NodeEstimate {
  double rows = 0;
  double blocks = 0;
  /// Implied tuple width in bytes (drives the blocking factor of results
  /// built on top of this node).
  double width = 0;
  /// Product of all selection selectivities applied in the subtree;
  /// scales pinned join sizes.
  double selection_factor = 1.0;
  /// Base relations joined beneath this node.
  std::set<std::string> bases;
  /// Surviving distinct-value estimates, keyed by qualified column name.
  std::map<std::string, double> distinct;
  /// Known numeric [min, max] per qualified column (drives range
  /// selectivity interpolation).
  std::map<std::string, std::pair<double, double>> ranges;

  /// Distinct count of `column`, clamped to the current row count;
  /// `fallback` when untracked.
  double distinct_of(const std::string& column, double fallback) const;
};

class CostModel {
 public:
  CostModel(const Catalog& catalog, CostModelConfig config = {});

  const Catalog& catalog() const { return *catalog_; }
  const CostModelConfig& config() const { return config_; }

  /// Estimated result size/stats of `plan`.
  NodeEstimate estimate(const PlanPtr& plan) const;

  /// Cost of producing `plan`'s result from its direct inputs (inputs
  /// assumed available as scannable relations; their production is not
  /// included). A scan's op_cost is 0 — reading a base relation is charged
  /// to the operator consuming it.
  double op_cost(const PlanPtr& plan) const;

  /// Total cost of computing `plan` from base relations: sum of op_cost
  /// over the subtree. For a bare scan this is the relation's blocks.
  /// This is the paper's Ca(v).
  double full_cost(const PlanPtr& plan) const;

  /// Selectivity in [0, 1] of `predicate` against rows described by
  /// `input`.
  double selectivity(const ExprPtr& predicate, const NodeEstimate& input) const;

  // --- kind-specific helpers shared with the MVPP evaluator, which works
  // on estimates rather than plan trees. ---

  /// Selection/projection over an input of `input_blocks`.
  double scan_op_cost(double input_blocks, bool pure_equality) const;

  /// Block nested-loop join; smaller side used as the outer.
  double join_op_cost(double left_blocks, double right_blocks) const;

  /// Blocks occupied by `rows` tuples of `width` bytes.
  double blocks_for(double rows, double width) const;

 private:
  NodeEstimate estimate_scan(const ScanOp& scan) const;
  NodeEstimate estimate_select(const SelectOp& op) const;
  NodeEstimate estimate_project(const ProjectOp& op) const;
  NodeEstimate estimate_join(const JoinOp& op) const;
  NodeEstimate estimate_aggregate(const AggregateOp& op) const;

  double comparison_selectivity(const ComparisonExpr& cmp,
                                const NodeEstimate& input) const;

  const Catalog* catalog_;
  CostModelConfig config_;
};

/// True when `predicate` is an equality comparison or a conjunction of
/// equality comparisons (the early-termination case for selections).
bool is_pure_equality(const ExprPtr& predicate);

}  // namespace mvd
