#include "src/distributed/distributed_evaluator.hpp"

#include <limits>
#include <set>

#include "src/common/assert.hpp"

namespace mvd {

DistributedMvppEvaluator::DistributedMvppEvaluator(const MvppGraph& graph,
                                                   SiteTopology topology,
                                                   MaintenancePolicy policy)
    : MvppEvaluator(graph, policy), topology_(std::move(topology)) {
  node_site_.resize(graph.size());
  for (const MvppNode& n : graph.nodes()) {
    switch (n.kind) {
      case MvppNodeKind::kBase:
        node_site_[static_cast<std::size_t>(n.id)] =
            topology_.relation_site(n.relation);
        break;
      case MvppNodeKind::kSelect:
      case MvppNodeKind::kProject:
        node_site_[static_cast<std::size_t>(n.id)] =
            node_site_[static_cast<std::size_t>(n.children[0])];
        break;
      case MvppNodeKind::kJoin: {
        // Run the join where the bigger input lives (ship the smaller).
        const MvppNode& l = graph.node(n.children[0]);
        const MvppNode& r = graph.node(n.children[1]);
        const NodeId host = l.blocks >= r.blocks ? l.id : r.id;
        node_site_[static_cast<std::size_t>(n.id)] =
            node_site_[static_cast<std::size_t>(host)];
        break;
      }
      case MvppNodeKind::kQuery:
        node_site_[static_cast<std::size_t>(n.id)] =
            topology_.query_site(n.name);
        break;
    }
  }

  // Storage placement: among the compute site and the issue sites of the
  // queries above the node, pick the site minimizing estimated read
  // shipping (one read per query execution, Σ fq over Ov) plus refresh
  // shipping (update_factor × blocks from the compute site).
  storage_site_.resize(graph.size());
  for (const MvppNode& n : graph.nodes()) {
    const std::string& compute = node_site_[static_cast<std::size_t>(n.id)];
    if (!n.is_operation()) {
      storage_site_[static_cast<std::size_t>(n.id)] = compute;
      continue;
    }
    std::vector<std::pair<std::string, double>> readers;  // site, fq
    for (NodeId q : graph.queries_using(n.id)) {
      readers.emplace_back(topology_.query_site(graph.node(q).name),
                           graph.node(q).frequency);
    }
    std::set<std::string> candidates{compute};
    for (const auto& [site, fq] : readers) candidates.insert(site);
    const double refresh_rate = update_factor(n.id);
    double best_cost = std::numeric_limits<double>::infinity();
    std::string best = compute;
    for (const std::string& site : candidates) {
      double cost =
          refresh_rate * n.blocks * topology_.transfer_cost(compute, site);
      for (const auto& [reader, fq] : readers) {
        cost += fq * n.blocks * topology_.transfer_cost(site, reader);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = site;
      }
    }
    storage_site_[static_cast<std::size_t>(n.id)] = best;
  }
}

const std::string& DistributedMvppEvaluator::storage_site_of(NodeId v) const {
  MVD_ASSERT(v >= 0 && static_cast<std::size_t>(v) < storage_site_.size());
  return storage_site_[static_cast<std::size_t>(v)];
}

const std::string& DistributedMvppEvaluator::site_of(NodeId v) const {
  MVD_ASSERT(v >= 0 && static_cast<std::size_t>(v) < node_site_.size());
  return node_site_[static_cast<std::size_t>(v)];
}

double DistributedMvppEvaluator::produce_cost_memo(
    NodeId v, const MaterializedSet& m, std::map<NodeId, double>& memo) const {
  if (auto it = memo.find(v); it != memo.end()) return it->second;
  const MvppNode& n = graph().node(v);
  MVD_ASSERT(n.kind != MvppNodeKind::kQuery);
  double cost = 0;
  if (n.kind != MvppNodeKind::kBase) {
    cost = n.op_cost;
    for (NodeId c : n.children) {
      const MvppNode& child = graph().node(c);
      const bool stored = child.kind == MvppNodeKind::kBase || m.contains(c);
      if (!stored) cost += produce_cost_memo(c, m, memo);
      // Ship the child's blocks to this node's compute site — from its
      // storage site when materialized, from its compute site otherwise.
      const std::string& from =
          m.contains(c) ? storage_site_of(c) : site_of(c);
      cost += child.blocks * topology_.transfer_cost(from, site_of(v));
    }
  }
  memo.emplace(v, cost);
  return cost;
}

double DistributedMvppEvaluator::produce_cost(NodeId v,
                                              const MaterializedSet& m) const {
  std::map<NodeId, double> memo;
  return produce_cost_memo(v, m, memo);
}

double DistributedMvppEvaluator::produce_transfer_memo(
    NodeId v, const MaterializedSet& m, std::map<NodeId, double>& memo) const {
  if (auto it = memo.find(v); it != memo.end()) return it->second;
  const MvppNode& n = graph().node(v);
  MVD_ASSERT(n.kind != MvppNodeKind::kQuery);
  double blocks = 0;
  if (n.kind != MvppNodeKind::kBase) {
    for (NodeId c : n.children) {
      const MvppNode& child = graph().node(c);
      const bool stored = child.kind == MvppNodeKind::kBase || m.contains(c);
      if (!stored) blocks += produce_transfer_memo(c, m, memo);
      const std::string& from =
          m.contains(c) ? storage_site_of(c) : site_of(c);
      if (from != site_of(v)) blocks += child.blocks;
    }
  }
  memo.emplace(v, blocks);
  return blocks;
}

double DistributedMvppEvaluator::produce_transfer_blocks(
    NodeId v, const MaterializedSet& m) const {
  std::map<NodeId, double> memo;
  return produce_transfer_memo(v, m, memo);
}

double DistributedMvppEvaluator::answer_transfer_blocks(
    NodeId query, const MaterializedSet& m) const {
  const MvppNode& q = graph().node(query);
  MVD_ASSERT(q.kind == MvppNodeKind::kQuery);
  const NodeId result = q.children[0];
  const MvppNode& r = graph().node(result);
  if (m.contains(result)) {
    return storage_site_of(result) != site_of(query) ? r.blocks : 0.0;
  }
  double blocks = produce_transfer_blocks(result, m);
  if (site_of(result) != site_of(query)) blocks += r.blocks;
  return blocks;
}

double DistributedMvppEvaluator::answer_cost(NodeId query,
                                             const MaterializedSet& m) const {
  const MvppNode& q = graph().node(query);
  MVD_ASSERT(q.kind == MvppNodeKind::kQuery);
  const NodeId result = q.children[0];
  const MvppNode& r = graph().node(result);
  if (m.contains(result)) {
    return r.blocks + r.blocks * topology_.transfer_cost(
                                     storage_site_of(result), site_of(query));
  }
  return produce_cost(result, m) +
         r.blocks *
             topology_.transfer_cost(site_of(result), site_of(query));
}

double DistributedMvppEvaluator::maintenance_cost(
    NodeId v, const MaterializedSet& m) const {
  const MvppNode& n = graph().node(v);
  MVD_ASSERT(n.is_operation());
  // Without reuse, recompute from the base relations only (still paying
  // transfers) — the distributed analogue of Ca(v). Each refresh also
  // ships the new contents from the compute site to the storage site.
  const double recompute = policy().reuse_materialized
                               ? produce_cost(v, m)
                               : produce_cost(v, MaterializedSet{});
  const double ship_to_store =
      n.blocks * topology_.transfer_cost(site_of(v), storage_site_of(v));
  return update_factor(v) * (recompute + ship_to_store);
}

}  // namespace mvd
