// Site topology for distributed warehouses: which site owns each member
// database relation, where each warehouse query is issued, and the
// per-block cost of shipping data between sites.
//
// The paper notes (§4.1) that in a distributed environment the cost C
// must incorporate data-transfer costs between sites; this module is that
// extension.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mvd {

class SiteTopology {
 public:
  /// `default_transfer` is the per-block cost between distinct sites when
  /// no explicit link cost is set; same-site transfer is always free.
  explicit SiteTopology(std::vector<std::string> sites,
                        double default_transfer = 1.0);

  const std::vector<std::string>& sites() const { return sites_; }
  bool has_site(const std::string& site) const;

  /// Set the per-block cost of the (symmetric) link a <-> b.
  void set_link_cost(const std::string& a, const std::string& b,
                     double cost_per_block);
  double transfer_cost(const std::string& from, const std::string& to) const;

  /// Place a base relation at a site.
  void place_relation(const std::string& relation, const std::string& site);
  /// Site of `relation`; defaults to the first site when unplaced.
  const std::string& relation_site(const std::string& relation) const;

  /// Declare where a query is issued (its consumers live there).
  void place_query(const std::string& query, const std::string& site);
  const std::string& query_site(const std::string& query) const;

 private:
  std::vector<std::string> sites_;
  double default_transfer_;
  std::map<std::pair<std::string, std::string>, double> links_;
  std::map<std::string, std::string> relation_site_;
  std::map<std::string, std::string> query_site_;
};

}  // namespace mvd
