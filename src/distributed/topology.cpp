#include "src/distributed/topology.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace mvd {

SiteTopology::SiteTopology(std::vector<std::string> sites,
                           double default_transfer)
    : sites_(std::move(sites)), default_transfer_(default_transfer) {
  if (sites_.empty()) throw PlanError("topology needs at least one site");
  if (!(default_transfer_ >= 0)) {
    throw PlanError("negative default transfer cost");
  }
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    for (std::size_t j = i + 1; j < sites_.size(); ++j) {
      if (sites_[i] == sites_[j]) {
        throw PlanError("duplicate site '" + sites_[i] + "'");
      }
    }
  }
}

bool SiteTopology::has_site(const std::string& site) const {
  return std::find(sites_.begin(), sites_.end(), site) != sites_.end();
}

void SiteTopology::set_link_cost(const std::string& a, const std::string& b,
                                 double cost_per_block) {
  if (!has_site(a) || !has_site(b)) {
    throw PlanError("unknown site in link " + a + " <-> " + b);
  }
  if (!(cost_per_block >= 0)) throw PlanError("negative link cost");
  links_[{std::min(a, b), std::max(a, b)}] = cost_per_block;
}

double SiteTopology::transfer_cost(const std::string& from,
                                   const std::string& to) const {
  if (from == to) return 0;
  auto it = links_.find({std::min(from, to), std::max(from, to)});
  return it == links_.end() ? default_transfer_ : it->second;
}

void SiteTopology::place_relation(const std::string& relation,
                                  const std::string& site) {
  if (!has_site(site)) throw PlanError("unknown site '" + site + "'");
  relation_site_[relation] = site;
}

const std::string& SiteTopology::relation_site(
    const std::string& relation) const {
  auto it = relation_site_.find(relation);
  return it == relation_site_.end() ? sites_.front() : it->second;
}

void SiteTopology::place_query(const std::string& query,
                               const std::string& site) {
  if (!has_site(site)) throw PlanError("unknown site '" + site + "'");
  query_site_[query] = site;
}

const std::string& SiteTopology::query_site(const std::string& query) const {
  auto it = query_site_.find(query);
  return it == query_site_.end() ? sites_.front() : it->second;
}

}  // namespace mvd
