// Communication-aware MVPP cost evaluation.
//
// Every MVPP node is assigned a compute site: base relations sit where the
// topology places them; selections/projections run where their input
// lives; a join runs on the side shipping fewer blocks; query roots read
// at their issue site. produce/answer/maintenance costs then add
// blocks-shipped × per-block link cost on every cross-site edge, on top of
// the block-access costs of the base evaluator.
//
// View placement: a materialized view is *stored* at the site minimizing
// estimated read shipping plus refresh shipping — chosen among the view's
// compute site and the issue sites of the queries above it, with reads
// approximated as one per query execution (Σ fq over Ov). Storing a view
// at its consumers' site converts per-query shipping into per-update
// shipping, which is exactly the distributed design trade-off of the
// paper's Section 4.1 note.
//
// Because the class derives from MvppEvaluator, every selection algorithm
// (Figure 9 heuristic, greedy, exhaustive, annealing) runs against the
// distributed cost model unchanged — that comparison is bench Ext-F.
#pragma once

#include "src/distributed/topology.hpp"
#include "src/mvpp/evaluation.hpp"

namespace mvd {

class DistributedMvppEvaluator : public MvppEvaluator {
 public:
  DistributedMvppEvaluator(const MvppGraph& graph, SiteTopology topology,
                           MaintenancePolicy policy = {});

  /// Compute site chosen for a node.
  const std::string& site_of(NodeId v) const;

  /// Storage site chosen for a node if it were materialized.
  const std::string& storage_site_of(NodeId v) const;

  double produce_cost(NodeId v, const MaterializedSet& m) const override;
  double answer_cost(NodeId query, const MaterializedSet& m) const override;
  double maintenance_cost(NodeId v, const MaterializedSet& m) const override;

  /// Predicted blocks shipped across sites while producing v's result
  /// over the materialized frontier `m` — the raw transfer volume,
  /// independent of per-link costs (every cross-site edge counts its
  /// child's blocks once). The §4.1 validation test compares this against
  /// the measured exchange-block log of the in-process sharded engine.
  double produce_transfer_blocks(NodeId v, const MaterializedSet& m) const;

  /// Predicted blocks shipped while answering `query`, including shipping
  /// the result (or the stored view) to the query's issue site.
  double answer_transfer_blocks(NodeId query, const MaterializedSet& m) const;

  const SiteTopology& topology() const { return topology_; }

 private:
  double produce_cost_memo(NodeId v, const MaterializedSet& m,
                           std::map<NodeId, double>& memo) const;
  double produce_transfer_memo(NodeId v, const MaterializedSet& m,
                               std::map<NodeId, double>& memo) const;

  SiteTopology topology_;
  std::vector<std::string> node_site_;     // compute sites
  std::vector<std::string> storage_site_;  // storage sites when materialized
};

}  // namespace mvd
