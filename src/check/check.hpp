// mvcheck — static analysis of logical plans before any engine touches
// data. One abstract-interpretation pass per plan:
//
//   * bottom-up schema/type inference: every column reference, projection
//     column, aggregate input and comparison is resolved and type-checked
//     against the child schema, so plans that would die row-by-row with
//     BindError/ExecError are rejected (or warned about) up front;
//   * predicate analysis over the interval domain of src/check/implication:
//     statically false selects/joins (contradiction), no-op predicates
//     (tautology) and conjuncts already entailed by filters below
//     (redundancy) are reported;
//   * cardinality intervals [lo, hi] per node, grounded in Database table
//     sizes when available — the differential tests assert the runtime
//     ExecStats rows_out always lands inside them;
//   * optional fusability segmentation (src/check/fusability) and
//     self-maintainability certification (src/check/maintainability).
//
// check_stage_hook wires the pass into Executor::run and
// incremental_refresh behind MVD_CHECK=off|warn|error, mirroring the
// mvlint MVD_LINT_LEVEL hook protocol.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/algebra/logical_plan.hpp"
#include "src/check/fusability.hpp"
#include "src/check/maintainability.hpp"
#include "src/common/json.hpp"
#include "src/lint/diagnostic.hpp"
#include "src/storage/database.hpp"
#include "src/storage/delta_table.hpp"

namespace mvd {

/// Closed cardinality interval; hi may be +infinity (unbounded).
struct CardInterval {
  double lo = 0;
  double hi = 0;
  bool contains(double n) const { return n >= lo && n <= hi; }
};

/// Per-node result of the pass, in postorder (children before parents,
/// each DAG node once).
struct NodeCheck {
  const LogicalOp* node = nullptr;
  std::string label;
  CardInterval rows;
};

struct CheckOptions {
  /// Grounds scan schemas and cardinalities; may be null.
  const Database* database = nullptr;
  /// Pending frontier deltas: enables predict_refresh_path.
  const DeltaSet* deltas = nullptr;
  /// Stored view name for the global-MIN/MAX placeholder check.
  std::string view_name;
  /// Run the fused-engine segmentation mirror.
  bool fusability = true;
  /// Certify self-maintainability of the plan as a refresh plan.
  bool maintainability = true;
};

struct CheckReport {
  /// The analyzed plan. The report owns it so the raw node pointers in
  /// `nodes` and `segments` stay valid for the report's lifetime.
  PlanPtr root;
  /// Diagnostics in mvlint's format (rule ids under "check/...").
  LintReport findings;
  /// Postorder node table with cardinality intervals.
  std::vector<NodeCheck> nodes;
  /// Fused-engine segmentation (empty when options.fusability is false).
  std::vector<ChainSegment> segments;
  std::optional<MaintCertificate> maintainability;
  std::optional<RefreshPrediction> refresh;

  bool ok() const { return !findings.has_errors(); }

  /// Hull of the intervals of every node carrying `label` (labels are not
  /// unique across a DAG); nullopt when no node matches.
  std::optional<CardInterval> card_of(const std::string& label) const;

  std::string render_text() const;
  Json to_json() const;
};

/// Run the full pass over `plan`. Never throws on malformed plans — every
/// defect becomes a finding (that is the point of the tool).
CheckReport check_plan(const PlanPtr& plan, const CheckOptions& options = {});

/// Hook protocol, mirroring lint_stage_hook:
///   kOff    — hooks return immediately (one getenv of cost);
///   kWarn   — findings are printed to stderr, execution proceeds;
///   kError  — warnings print, error findings abort the stage with the
///             exception class the runtime would eventually throw
///             (BindError for resolution failures, ExecError otherwise).
enum class CheckHookLevel { kOff = 0, kWarn = 1, kError = 2 };

/// Programmatic override > MVD_CHECK environment variable > kOff.
CheckHookLevel check_hook_level();
void set_check_hook_level(std::optional<CheckHookLevel> level);

/// Pre-execution checkpoint invoked by Executor::run ("exec") and
/// incremental_refresh ("refresh").
void check_stage_hook(const char* stage, const PlanPtr& plan,
                      const Database* database);

}  // namespace mvd
