#include "src/check/fusability.hpp"

#include <set>

#include "src/storage/column_table.hpp"

namespace mvd {

namespace {

bool numeric_kind(ColumnKind k) {
  return k == ColumnKind::kInt64Col || k == ColumnKind::kDoubleCol;
}

/// Mirror of fused.cpp compile_conjunct, minus FilterStep production:
/// accepts exactly the conjuncts the kernel layer compiles, and reports
/// the first failing rule through `refusal`.
bool conjunct_fusable(const ExprPtr& e, const Schema& schema,
                      std::string& refusal) {
  if (e == nullptr) {
    refusal = "empty conjunct";
    return false;
  }
  if (e->kind() != ExprKind::kComparison) {
    refusal = "non-comparison conjunct " + e->to_string() +
              " (OR/NOT/literal predicates run interpreted)";
    return false;
  }
  const auto& c = static_cast<const ComparisonExpr&>(*e);
  const Expr* lhs = c.lhs().get();
  const Expr* rhs = c.rhs().get();
  if (lhs->kind() == ExprKind::kLiteral && rhs->kind() == ExprKind::kColumn) {
    std::swap(lhs, rhs);
  }
  if (lhs->kind() != ExprKind::kColumn) {
    refusal = "conjunct " + e->to_string() + " has no column operand";
    return false;
  }
  const std::string& lname = static_cast<const ColumnExpr&>(*lhs).name();
  const auto li = schema.find(lname);
  if (!li.has_value()) {
    refusal = "column '" + lname + "' absent from the chain input";
    return false;
  }
  const ColumnKind lk = column_kind(schema.at(*li).type);
  if (rhs->kind() == ExprKind::kLiteral) {
    const Value& v = static_cast<const LiteralExpr&>(*rhs).value();
    if (numeric_kind(lk) && is_numeric(v.type())) return true;
    if (lk == ColumnKind::kStringCol && v.type() == ValueType::kString) {
      return true;
    }
    refusal = "mixed-type or boolean comparison " + e->to_string();
    return false;
  }
  if (rhs->kind() != ExprKind::kColumn) {
    refusal = "conjunct " + e->to_string() + " compares non-column operands";
    return false;
  }
  const std::string& rname = static_cast<const ColumnExpr&>(*rhs).name();
  const auto ri = schema.find(rname);
  if (!ri.has_value()) {
    refusal = "column '" + rname + "' absent from the chain input";
    return false;
  }
  const ColumnKind rk = column_kind(schema.at(*ri).type);
  if (numeric_kind(lk) && numeric_kind(rk)) return true;
  if (lk == ColumnKind::kStringCol && rk == ColumnKind::kStringCol) return true;
  refusal = "mixed-type or boolean comparison " + e->to_string();
  return false;
}

/// Mirror of fused.cpp node_fusable: projects always, selects when every
/// conjunct compiles against the node's input schema.
bool node_fusable(const LogicalOp& n, std::string& refusal) {
  if (n.kind() == OpKind::kProject) return true;
  if (n.kind() != OpKind::kSelect) {
    refusal = "not a select/project";
    return false;
  }
  const auto& sel = static_cast<const SelectOp&>(n);
  const Schema& in = n.children()[0]->output_schema();
  for (const ExprPtr& c : conjuncts_of(sel.predicate())) {
    if (!conjunct_fusable(c, in, refusal)) return false;
  }
  return true;
}

}  // namespace

FusePrediction predict_fused_chain(
    const PlanPtr& plan,
    const std::map<const LogicalOp*, std::size_t>& use_count) {
  FusePrediction pred;
  if (plan->kind() != OpKind::kSelect && plan->kind() != OpKind::kProject) {
    pred.refusal = "not a select/project";
    return pred;
  }
  if (!node_fusable(*plan, pred.refusal)) return pred;

  // Downward walk: identical chain-extension rules to detect_fused_chain
  // (fusable select/project children with exactly one parent).
  std::vector<PlanPtr> nodes;
  PlanPtr cur = plan;
  while (true) {
    nodes.push_back(cur);
    const PlanPtr& child = cur->children()[0];
    if (child->kind() != OpKind::kSelect &&
        child->kind() != OpKind::kProject) {
      break;
    }
    const auto it = use_count.find(child.get());
    if (it != use_count.end() && it->second > 1) break;  // shared node
    std::string ignored;
    if (!node_fusable(*child, ignored)) break;
    cur = child;
  }

  // Bottom-up compile replay: track the schema through project re-maps;
  // every refusal here corresponds to a detect_fused_chain nullopt (or,
  // for corrupted plans, the BindError it would throw).
  pred.source = nodes.back()->children()[0];
  Schema cur_schema = pred.source->output_schema();
  std::size_t select_count = 0;
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    const LogicalOp& n = **it;
    if (n.kind() == OpKind::kSelect) {
      const auto& sel = static_cast<const SelectOp&>(n);
      const auto conjuncts = conjuncts_of(sel.predicate());
      for (const ExprPtr& c : conjuncts) {
        if (!conjunct_fusable(c, cur_schema, pred.refusal)) return pred;
      }
      if (conjuncts.empty()) {
        pred.refusal = "degenerate predicate with no conjuncts";
        return pred;
      }
      ++select_count;
    } else {
      const auto& proj = static_cast<const ProjectOp&>(n);
      for (const std::string& c : proj.columns()) {
        if (!cur_schema.contains(c)) {
          pred.refusal =
              "projection references '" + c + "' absent from the chain";
          return pred;
        }
      }
      cur_schema = proj.output_schema();
    }
  }
  if (select_count == 0) {
    pred.refusal = "pure projection chain (already free interpreted)";
    return pred;
  }
  pred.fusable = true;
  pred.stage_count = nodes.size();
  pred.select_count = select_count;
  pred.out_schema = cur_schema;
  return pred;
}

std::vector<ChainSegment> predict_engine_segments(const PlanPtr& plan) {
  // Mirror of plan_use_counts (fused.cpp): the root carries one use,
  // every child one per parent edge, each shared subtree counted once.
  std::map<const LogicalOp*, std::size_t> uses;
  uses[plan.get()] = 1;
  {
    std::set<const LogicalOp*> visited;
    std::vector<PlanPtr> stack{plan};
    while (!stack.empty()) {
      const PlanPtr n = stack.back();
      stack.pop_back();
      for (const PlanPtr& c : n->children()) {
        ++uses[c.get()];
        if (visited.insert(c.get()).second) stack.push_back(c);
      }
    }
  }

  std::vector<ChainSegment> segments;
  std::set<const LogicalOp*> visited;
  // Depth-first in child order, like the engine's recursive node() walk.
  std::vector<PlanPtr> stack{plan};
  while (!stack.empty()) {
    const PlanPtr n = stack.back();
    stack.pop_back();
    if (!visited.insert(n.get()).second) continue;
    if (n->kind() == OpKind::kSelect || n->kind() == OpKind::kProject) {
      ChainSegment seg;
      seg.head = n.get();
      seg.prediction = predict_fused_chain(n, uses);
      const bool fusable = seg.prediction.fusable;
      const PlanPtr source = seg.prediction.source;
      segments.push_back(std::move(seg));
      if (fusable) {
        stack.push_back(source);  // interior nodes are consumed
        continue;
      }
    }
    for (const PlanPtr& c : n->children()) stack.push_back(c);
  }
  return segments;
}

}  // namespace mvd
