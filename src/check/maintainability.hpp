// Static self-maintainability certification of refresh plans — a mirror
// of the runtime decisions in src/exec/delta.cpp (DeltaPropagator) and
// src/maintenance/refresh.cpp (incremental_refresh / try_group_apply),
// grounded in the Aziz/Batool self-maintenance analysis of PAPERS.md.
//
// Two views of the same question:
//   * certify_refresh_plan(plan) is batch-independent: can this plan ever
//     be maintained incrementally, and under what update classes?
//     (kSelfMaintainable / kInsertOnly / kExtremumHazard /
//     kNotMaintainable — a verdict lattice from strongest to weakest.)
//   * predict_refresh_path(plan, deltas) is batch-aware: given the
//     pending frontier deltas, which RefreshPath will incremental_refresh
//     actually take? Where the runtime decision depends on data the
//     static pass cannot see (does a delete survive the filters? does a
//     non-equi join see two empty deltas?), the prediction is honest
//     about it: kDataDependent, which the differential tests accept as
//     "anything but skipped".
#pragma once

#include <string>

#include "src/algebra/aggregate.hpp"
#include "src/algebra/logical_plan.hpp"
#include "src/storage/database.hpp"
#include "src/storage/delta_table.hpp"

namespace mvd {

/// Batch-independent maintainability class of a refresh plan, strongest
/// first.
enum class MaintVerdict {
  /// Incremental maintenance succeeds for every consistent delta batch.
  kSelfMaintainable,
  /// Insert-only batches maintain incrementally; deletes force recompute
  /// (no COUNT to detect emptied groups).
  kInsertOnly,
  /// Structurally maintainable, but a delete reaching a stored MIN/MAX
  /// extremum forces recompute — data-dependent on the batch.
  kExtremumHazard,
  /// Delta propagation cannot reach the root (interior aggregate,
  /// non-equi join) or the aggregate cannot be reconstructed (AVG without
  /// COUNT + same-column SUM, global MIN/MAX without COUNT).
  kNotMaintainable,
};

std::string to_string(MaintVerdict verdict);

struct MaintCertificate {
  MaintVerdict verdict = MaintVerdict::kSelfMaintainable;
  std::string reason;  // why the verdict is not kSelfMaintainable
};

/// Certify `plan` as incremental_refresh would drive it: the root is the
/// view operator (grouped +/- application when it is an aggregate,
/// row-wise delta application otherwise), everything below must be
/// covered by the delta-propagation algebra.
MaintCertificate certify_refresh_plan(const PlanPtr& plan);

/// The refresh path incremental_refresh will take for one view.
enum class PredictedPath {
  kSkip,         // == RefreshPath::kSkipped, and conversely
  kIncremental,  // => kApplied or kGroupApplied
  kRecompute,    // => kRecomputed
  kDataDependent,  // => anything but kSkipped
};

std::string to_string(PredictedPath path);

struct RefreshPrediction {
  PredictedPath path = PredictedPath::kDataDependent;
  std::string reason;
};

/// Predict the path for `plan` under the frontier `deltas` (base-relation
/// deltas plus already-refreshed view deltas, exactly what
/// incremental_refresh hands its DeltaPropagator). `db`/`view_name`
/// resolve the stored view for the global-MIN/MAX placeholder check; pass
/// null/empty when unavailable (those cases then answer kDataDependent).
RefreshPrediction predict_refresh_path(const PlanPtr& plan,
                                       const DeltaSet& deltas,
                                       const Database* db = nullptr,
                                       const std::string& view_name = {});

}  // namespace mvd
