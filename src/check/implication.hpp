// Predicate analysis over an interval abstract domain — the reasoning
// core of mvcheck (and, by design, of the future mvserve view-subsumption
// rewriter: "does the view's predicate imply the query's?" is implies()).
//
// A PredicateFacts accumulates the conjuncts of a predicate bound against
// one schema and maintains an index over them:
//   * union-find equivalence classes of columns linked by col = col
//     conjuncts (the equi-join fragment),
//   * per-class numeric intervals with open/closed endpoints, tightened
//     to integers when any class member has an integral type (int64 or
//     date: x > 5 and x >= 6 describe the same rows),
//   * per-class string/bool bindings and small disequality sets,
//   * ordering edges between classes for non-equality col-op-col
//     conjuncts,
//   * the normalized text of every conjunct, as a syntactic fallback.
//
// Everything outside that fragment (ORs, arithmetic the algebra does not
// have, cross-type comparisons) is kept only syntactically; queries about
// it answer conservatively. The three derived judgements:
//   contradictory(p): the facts are jointly unsatisfiable — a select with
//     this predicate is statically empty.
//   entails(c): every row satisfying the facts satisfies `c` — a later
//     conjunct `c` is redundant (always true here).
//   implies(p, q): facts(p) entail every conjunct of q. Sound, not
//     complete: true means q provably holds wherever p does; false means
//     "not proved". Note ex falso: a contradictory p implies everything.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/algebra/expr.hpp"
#include "src/catalog/schema.hpp"

namespace mvd {

/// A numeric interval with independently open/closed endpoints.
/// Default-constructed = (-inf, +inf), i.e. no constraint.
struct ValueInterval {
  double lo;
  bool lo_open = false;
  double hi;
  bool hi_open = false;

  ValueInterval();
  static ValueInterval point(double v);
  static ValueInterval at_least(double v, bool open);
  static ValueInterval at_most(double v, bool open);

  bool empty() const;
  bool contains_point(double v) const;
  /// Superset test: every point of `other` lies in *this.
  bool contains(const ValueInterval& other) const;
  /// True when every x in *this is strictly below every y in `other`.
  bool strictly_below(const ValueInterval& other) const;
  /// True when every x in *this is <= every y in `other`.
  bool weakly_below(const ValueInterval& other) const;
  /// True when the two intervals share no point.
  bool disjoint(const ValueInterval& other) const;
  /// The single value, when the interval is one closed point.
  std::optional<double> singleton() const;

  ValueInterval intersect(const ValueInterval& other) const;
  /// Shrink both endpoints to the integer lattice (for integral columns:
  /// x > 5.5 becomes x >= 6, x > 5 becomes x >= 6).
  ValueInterval integral_tightened() const;
};

class PredicateFacts {
 public:
  /// Empty fact set over `schema` (entails only tautologies).
  explicit PredicateFacts(Schema schema);
  /// Facts from every conjunct of `predicate` (normalized first).
  PredicateFacts(const ExprPtr& predicate, Schema schema);

  /// Ingest one more conjunct (normalized internally).
  void add(const ExprPtr& conjunct);

  /// True when the accumulated conjuncts admit no satisfying row.
  bool contradictory() const;

  /// True when `conjunct` holds on every row satisfying the facts.
  /// Conservative (false = not proved). Contradictory facts entail
  /// everything.
  bool entails(const ExprPtr& conjunct) const;

  /// The normalized conjuncts accumulated so far, in insertion order.
  const std::vector<ExprPtr>& conjuncts() const { return conjuncts_; }

  const Schema& schema() const { return schema_; }

 private:
  struct ClassState {
    ValueInterval interval;
    bool integral = false;  // some member column has int64/date type
    std::optional<std::string> str_eq;
    std::set<std::string> str_ne;
    std::optional<bool> bool_eq;
    std::set<double> num_ne;
  };
  struct OrderEdge {
    std::size_t left;  // class representatives at index time
    CompareOp op;      // kLt / kLe / kGt / kGe / kNe
    std::size_t right;
  };

  std::size_t find_rep(std::size_t col) const;
  void union_cols(std::size_t a, std::size_t b);
  ClassState& state_of(std::size_t col);
  const ClassState* state_ptr(std::size_t col) const;
  bool class_integral(std::size_t rep) const;
  /// The class interval with integral tightening and ne-set endpoint
  /// sharpening applied (x >= 5 plus x != 5 is x > 5).
  ValueInterval effective_interval(std::size_t col) const;

  void rebuild_index() const;
  void ingest(const ExprPtr& conjunct);
  void ingest_comparison(const ComparisonExpr& c);
  void refine_order(const OrderEdge& e);
  void mark_contradiction() { contradiction_ = true; }

  bool entails_indexed(const ExprPtr& conjunct) const;
  bool entails_comparison(const ComparisonExpr& c) const;

  Schema schema_;
  std::vector<ExprPtr> conjuncts_;

  // Index over conjuncts_, rebuilt lazily after add().
  mutable bool index_dirty_ = true;
  mutable std::vector<std::size_t> parent_;  // union-find over column index
  mutable std::map<std::size_t, ClassState> classes_;  // by representative
  mutable std::vector<OrderEdge> orders_;
  mutable std::set<std::string> conjunct_texts_;
  mutable bool contradiction_ = false;
};

/// facts(p) entail every conjunct of q. See PredicateFacts for the
/// supported fragment; sound but not complete.
bool implies(const ExprPtr& p, const ExprPtr& q, const Schema& schema);

/// The predicate admits no satisfying row (statically-empty select).
bool contradictory(const ExprPtr& p, const Schema& schema);

/// The predicate holds on every row (safe to drop).
bool tautological(const ExprPtr& p, const Schema& schema);

/// Bottom-up constant folding: literal-vs-literal comparisons evaluate,
/// same-column comparisons collapse (x = x is true, x < x is false),
/// AND/OR absorb literal operands, NOT of a literal negates. Returns the
/// original pointer when nothing folds (identity-preserving — callers
/// rely on pointer equality to detect "no change"). NaN literals are left
/// untouched.
ExprPtr fold_constants(const ExprPtr& expr);

}  // namespace mvd
