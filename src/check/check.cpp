#include "src/check/check.hpp"

#include <cstdlib>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "src/algebra/aggregate.hpp"
#include "src/check/implication.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace mvd {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// hi-bound product that keeps 0 absorbing (inf * 0 would be NaN).
double card_mul(double a, double b) { return (a == 0 || b == 0) ? 0 : a * b; }

struct SafeFind {
  std::optional<std::size_t> index;
  bool ambiguous = false;
};

SafeFind safe_find(const Schema& schema, const std::string& name) {
  SafeFind out;
  try {
    out.index = schema.find(name);
  } catch (const BindError&) {
    out.ambiguous = true;
  }
  return out;
}

struct Analyzer {
  const CheckOptions& opts;
  CheckReport& report;

  struct Info {
    CardInterval card;
    /// Conjuncts known true of every output row (normalized).
    std::vector<ExprPtr> facts;
  };
  std::map<const LogicalOp*, Info> memo;

  void finding(const char* rule, Severity severity, const LogicalOp& node,
               std::string message, std::string hint = {}) {
    Diagnostic d;
    d.rule = rule;
    d.severity = severity;
    d.subject = node.label();
    d.message = std::move(message);
    d.hint = std::move(hint);
    report.findings.add(std::move(d));
  }

  /// Resolve `name` against `schema`, reporting failures under `rule`.
  std::optional<std::size_t> resolve(const std::string& name,
                                     const Schema& schema, const char* rule,
                                     const LogicalOp& node) {
    const SafeFind f = safe_find(schema, name);
    if (f.ambiguous) {
      finding(rule, Severity::kError, node,
              "column '" + name + "' is ambiguous in " + schema.to_string(),
              "qualify it as Source.column");
      return std::nullopt;
    }
    if (!f.index.has_value()) {
      finding(rule, Severity::kError, node,
              "references unknown column '" + name + "'",
              "input schema is " + schema.to_string());
    }
    return f.index;
  }

  /// Bottom-up type inference over one expression; reports resolution and
  /// type findings against `node`. nullopt = type unknown (already
  /// reported).
  std::optional<ValueType> infer(const ExprPtr& e, const Schema& schema,
                                 const LogicalOp& node) {
    switch (e->kind()) {
      case ExprKind::kColumn: {
        const auto idx = resolve(static_cast<const ColumnExpr&>(*e).name(),
                                 schema, "check/column-resolve", node);
        if (!idx.has_value()) return std::nullopt;
        return schema.at(*idx).type;
      }
      case ExprKind::kLiteral:
        return static_cast<const LiteralExpr&>(*e).value().type();
      case ExprKind::kComparison: {
        const auto& c = static_cast<const ComparisonExpr&>(*e);
        const auto lt = infer(c.lhs(), schema, node);
        const auto rt = infer(c.rhs(), schema, node);
        if (lt.has_value() && rt.has_value() && *lt != *rt &&
            !(is_numeric(*lt) && is_numeric(*rt))) {
          finding("check/type-mismatch", Severity::kError, node,
                  "comparison " + e->to_string() + " mixes " + to_string(*lt) +
                      " and " + to_string(*rt),
                  "Value::compare throws ExecError on the first row");
        }
        return ValueType::kBool;
      }
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        for (const ExprPtr& op :
             static_cast<const BoolExpr&>(*e).operands()) {
          const auto t = infer(op, schema, node);
          if (t.has_value() && *t != ValueType::kBool) {
            finding("check/predicate-type", Severity::kError, node,
                    "boolean operand " + op->to_string() + " has type " +
                        to_string(*t),
                    "as_bool() throws ExecError at evaluation time");
          }
        }
        return ValueType::kBool;
      }
      case ExprKind::kNot: {
        const auto t =
            infer(static_cast<const NotExpr&>(*e).operand(), schema, node);
        if (t.has_value() && *t != ValueType::kBool) {
          finding("check/predicate-type", Severity::kError, node,
                  "NOT operand has type " + to_string(*t),
                  "as_bool() throws ExecError at evaluation time");
        }
        return ValueType::kBool;
      }
    }
    return std::nullopt;
  }

  /// Check a select/join predicate root: resolvable, well-typed, bool.
  void check_predicate(const ExprPtr& pred, const Schema& schema,
                       const LogicalOp& node) {
    const auto t = infer(pred, schema, node);
    if (t.has_value() && *t != ValueType::kBool) {
      finding("check/predicate-type", Severity::kError, node,
              "predicate " + pred->to_string() + " has type " + to_string(*t) +
                  ", not bool",
              "matches() throws ExecError on the first row");
    }
  }

  /// Keep only the facts whose columns still resolve in `schema`.
  std::vector<ExprPtr> surviving_facts(const std::vector<ExprPtr>& facts,
                                       const Schema& schema) {
    std::vector<ExprPtr> out;
    for (const ExprPtr& f : facts) {
      bool ok = true;
      for (const std::string& c : columns_of(f)) {
        const SafeFind sf = safe_find(schema, c);
        if (sf.ambiguous || !sf.index.has_value()) {
          ok = false;
          break;
        }
      }
      if (ok) out.push_back(f);
    }
    return out;
  }

  const Info& analyze(const PlanPtr& plan) {
    const auto hit = memo.find(plan.get());
    if (hit != memo.end()) return hit->second;

    Info info;
    switch (plan->kind()) {
      case OpKind::kScan:
        info = analyze_scan(static_cast<const ScanOp&>(*plan));
        break;
      case OpKind::kSelect:
        info = analyze_select(plan);
        break;
      case OpKind::kProject:
        info = analyze_project(plan);
        break;
      case OpKind::kJoin:
        info = analyze_join(plan);
        break;
      case OpKind::kAggregate:
        info = analyze_aggregate(plan);
        break;
    }

    NodeCheck nc;
    nc.node = plan.get();
    nc.label = plan->label();
    nc.rows = info.card;
    report.nodes.push_back(std::move(nc));
    return memo.emplace(plan.get(), std::move(info)).first->second;
  }

  Info analyze_scan(const ScanOp& scan) {
    Info info;
    info.card = {0, kInf};
    if (opts.database != nullptr && opts.database->has_table(scan.relation())) {
      const Table& table = opts.database->table(scan.relation());
      const double n = static_cast<double>(table.row_count());
      info.card = {n, n};
      // Execution is positional: the recorded schema's names may carry
      // source qualifiers the stored table lacks, but arity and types
      // must line up or every downstream value read is garbage.
      const Schema& recorded = scan.output_schema();
      const Schema& stored = table.schema();
      bool mismatch = recorded.size() != stored.size();
      for (std::size_t i = 0; !mismatch && i < recorded.size(); ++i) {
        mismatch = recorded.at(i).type != stored.at(i).type;
      }
      if (mismatch) {
        finding("check/scan-schema", Severity::kError, scan,
                "recorded schema " + recorded.to_string() +
                    " disagrees with stored table schema " +
                    stored.to_string() + " in arity or types",
                "rebuild the plan against the current catalog");
      }
    }
    return info;
  }

  Info analyze_select(const PlanPtr& plan) {
    const auto& sel = static_cast<const SelectOp&>(*plan);
    const Info& child = analyze(plan->children()[0]);
    const Schema& in = plan->children()[0]->output_schema();

    Info info;
    if (sel.predicate() == nullptr) {
      finding("check/predicate-type", Severity::kError, sel,
              "select has no predicate");
      info.card = {0, child.card.hi};
      info.facts = child.facts;
      return info;
    }
    check_predicate(sel.predicate(), in, sel);
    if (!(plan->output_schema() == in)) {
      finding("check/schema-consistent", Severity::kWarn, sel,
              "recorded output schema differs from the child schema",
              "selects are schema-preserving");
    }

    PredicateFacts facts(in);
    for (const ExprPtr& f : child.facts) facts.add(f);
    const bool below_contradictory = facts.contradictory();

    const bool taut = tautological(sel.predicate(), in);
    if (taut) {
      finding("check/tautology", Severity::kInfo, sel,
              "predicate " + sel.predicate()->to_string() + " is always true",
              "the select filters nothing and can be dropped");
    }
    bool all_entailed = true;
    for (const ExprPtr& c : conjuncts_of(sel.predicate())) {
      const bool entailed = facts.entails(c);
      if (entailed && !taut && !below_contradictory) {
        finding("check/redundant-conjunct", Severity::kInfo, sel,
                "conjunct " + c->to_string() +
                    " is already guaranteed by filters below");
      }
      all_entailed = all_entailed && entailed;
      facts.add(c);
    }
    if (facts.contradictory() && !below_contradictory) {
      finding("check/contradiction", Severity::kWarn, sel,
              "statically false predicate — the select emits no rows",
              "combined with enclosing filters: " +
                  (sel.predicate() ? sel.predicate()->to_string() : ""));
    }

    if (facts.contradictory()) {
      info.card = {0, 0};
    } else if (all_entailed) {
      info.card = child.card;
    } else {
      info.card = {0, child.card.hi};
    }
    info.facts = facts.conjuncts();
    return info;
  }

  Info analyze_project(const PlanPtr& plan) {
    const auto& proj = static_cast<const ProjectOp&>(*plan);
    const Info& child = analyze(plan->children()[0]);
    const Schema& in = plan->children()[0]->output_schema();

    for (const std::string& c : proj.columns()) {
      resolve(c, in, "check/projection-resolve", proj);
    }
    if (plan->output_schema().size() != proj.columns().size()) {
      finding("check/schema-consistent", Severity::kWarn, proj,
              "recorded output schema has " +
                  std::to_string(plan->output_schema().size()) +
                  " attributes for " + std::to_string(proj.columns().size()) +
                  " projected columns");
    }

    Info info;
    info.card = child.card;
    info.facts = surviving_facts(child.facts, plan->output_schema());
    return info;
  }

  Info analyze_join(const PlanPtr& plan) {
    const auto& join = static_cast<const JoinOp&>(*plan);
    const Info& l = analyze(plan->children()[0]);
    const Info& r = analyze(plan->children()[1]);
    const Schema combined =
        Schema::concat(plan->children()[0]->output_schema(),
                       plan->children()[1]->output_schema());

    if (!(plan->output_schema() == combined)) {
      finding("check/schema-consistent", Severity::kWarn, join,
              "recorded output schema is not the concatenation of the "
              "input schemas");
    }
    Info info;
    if (join.predicate() == nullptr) {
      finding("check/predicate-type", Severity::kError, join,
              "join has no predicate");
      info.card = {0, card_mul(l.card.hi, r.card.hi)};
      return info;
    }
    check_predicate(join.predicate(), combined, join);

    PredicateFacts facts(combined);
    for (const ExprPtr& f : l.facts) facts.add(f);
    for (const ExprPtr& f : r.facts) facts.add(f);
    const bool below_contradictory = facts.contradictory();
    for (const ExprPtr& c : conjuncts_of(join.predicate())) facts.add(c);
    if (facts.contradictory() && !below_contradictory) {
      finding("check/contradiction", Severity::kWarn, join,
              "statically false join predicate — the join emits no rows");
    }

    if (facts.contradictory()) {
      info.card = {0, 0};
    } else {
      info.card.hi = card_mul(l.card.hi, r.card.hi);
      info.card.lo = tautological(join.predicate(), combined)
                         ? card_mul(l.card.lo, r.card.lo)
                         : 0;
    }
    info.facts = facts.conjuncts();
    return info;
  }

  Info analyze_aggregate(const PlanPtr& plan) {
    const auto& agg = static_cast<const AggregateOp&>(*plan);
    const Info& child = analyze(plan->children()[0]);
    const Schema& in = plan->children()[0]->output_schema();

    for (const std::string& g : agg.group_by()) {
      resolve(g, in, "check/agg-resolve", agg);
    }
    for (const AggSpec& spec : agg.aggregates()) {
      if (spec.column.empty()) {
        if (spec.fn != AggFn::kCount) {
          finding("check/agg-resolve", Severity::kError, agg,
                  "aggregate '" + spec.alias + "' has no input column",
                  "only COUNT(*) takes no input");
        }
        continue;
      }
      const auto idx = resolve(spec.column, in, "check/agg-resolve", agg);
      if (!idx.has_value()) continue;
      const ValueType t = in.at(*idx).type;
      if ((spec.fn == AggFn::kSum || spec.fn == AggFn::kAvg ||
           spec.fn == AggFn::kSumInt) &&
          !is_numeric(t)) {
        finding("check/agg-input", Severity::kWarn, agg,
                "aggregate '" + spec.alias + "' sums " + to_string(t) +
                    " column '" + spec.column + "'",
                "non-numeric inputs are silently skipped by the accumulator");
      }
    }
    if (plan->output_schema().size() !=
        agg.group_by().size() + agg.aggregates().size()) {
      finding("check/schema-consistent", Severity::kWarn, agg,
              "recorded output schema arity does not match group-by plus "
              "aggregate count");
    }

    Info info;
    if (agg.group_by().empty()) {
      info.card = {1, 1};  // global aggregates emit the placeholder row
    } else {
      info.card = {child.card.lo > 0 ? 1.0 : 0.0, child.card.hi};
    }
    // Facts on group-by columns survive grouping.
    std::set<std::string> groups(agg.group_by().begin(), agg.group_by().end());
    std::vector<ExprPtr> grouped;
    for (const ExprPtr& f : child.facts) {
      bool ok = true;
      for (const std::string& c : columns_of(f)) {
        if (groups.find(c) == groups.end()) {
          ok = false;
          break;
        }
      }
      if (ok) grouped.push_back(f);
    }
    info.facts = surviving_facts(grouped, plan->output_schema());
    return info;
  }
};

}  // namespace

std::optional<CardInterval> CheckReport::card_of(
    const std::string& label) const {
  std::optional<CardInterval> hull;
  for (const NodeCheck& n : nodes) {
    if (n.label != label) continue;
    if (!hull.has_value()) {
      hull = n.rows;
    } else {
      hull->lo = std::min(hull->lo, n.rows.lo);
      hull->hi = std::max(hull->hi, n.rows.hi);
    }
  }
  return hull;
}

namespace {

std::string card_str(const CardInterval& c) {
  std::ostringstream os;
  os << "[" << c.lo << ", ";
  if (c.hi == kInf) {
    os << "inf";
  } else {
    os << c.hi;
  }
  os << "]";
  return os.str();
}

}  // namespace

std::string CheckReport::render_text() const {
  std::ostringstream os;
  os << "mvcheck: " << nodes.size() << " node(s), "
     << findings.count(Severity::kError) << " error(s), "
     << findings.count(Severity::kWarn) << " warning(s), "
     << findings.count(Severity::kInfo) << " info(s)\n";
  if (!findings.clean()) os << findings.render_text();
  os << "cardinality:\n";
  for (const NodeCheck& n : nodes) {
    os << "  " << n.label << "  " << card_str(n.rows) << "\n";
  }
  if (!segments.empty()) {
    os << "fused segments:\n";
    for (const ChainSegment& s : segments) {
      os << "  " << (s.head != nullptr ? s.head->label() : "?") << ": ";
      if (s.prediction.fusable) {
        os << "fused (" << s.prediction.stage_count << " stage(s), "
           << s.prediction.select_count << " select(s))";
      } else {
        os << "interpreted — " << s.prediction.refusal;
      }
      os << "\n";
    }
  }
  if (maintainability.has_value()) {
    os << "maintainability: " << to_string(maintainability->verdict);
    if (!maintainability->reason.empty()) {
      os << " (" << maintainability->reason << ")";
    }
    os << "\n";
  }
  if (refresh.has_value()) {
    os << "refresh path: " << to_string(refresh->path);
    if (!refresh->reason.empty()) os << " (" << refresh->reason << ")";
    os << "\n";
  }
  return os.str();
}

Json CheckReport::to_json() const {
  Json j = Json::object();
  j.set("ok", Json::boolean(ok()));
  j.set("findings", findings.to_json());
  Json node_arr = Json::array();
  for (const NodeCheck& n : nodes) {
    Json nj = Json::object();
    nj.set("label", Json::string(n.label));
    nj.set("rows_lo", Json::number(n.rows.lo));
    nj.set("rows_hi",
           n.rows.hi == kInf ? Json::null() : Json::number(n.rows.hi));
    node_arr.push_back(std::move(nj));
  }
  j.set("nodes", std::move(node_arr));
  Json seg_arr = Json::array();
  for (const ChainSegment& s : segments) {
    Json sj = Json::object();
    sj.set("head",
           Json::string(s.head != nullptr ? s.head->label() : std::string()));
    sj.set("fusable", Json::boolean(s.prediction.fusable));
    sj.set("stages",
           Json::number(static_cast<double>(s.prediction.stage_count)));
    sj.set("selects",
           Json::number(static_cast<double>(s.prediction.select_count)));
    sj.set("refusal", Json::string(s.prediction.refusal));
    seg_arr.push_back(std::move(sj));
  }
  j.set("segments", std::move(seg_arr));
  if (maintainability.has_value()) {
    Json mj = Json::object();
    mj.set("verdict", Json::string(to_string(maintainability->verdict)));
    mj.set("reason", Json::string(maintainability->reason));
    j.set("maintainability", std::move(mj));
  } else {
    j.set("maintainability", Json::null());
  }
  if (refresh.has_value()) {
    Json rj = Json::object();
    rj.set("path", Json::string(to_string(refresh->path)));
    rj.set("reason", Json::string(refresh->reason));
    j.set("refresh", std::move(rj));
  } else {
    j.set("refresh", Json::null());
  }
  return j;
}

CheckReport check_plan(const PlanPtr& plan, const CheckOptions& options) {
  CheckReport report;
  report.root = plan;
  Analyzer analyzer{options, report, {}};
  analyzer.analyze(plan);
  if (options.fusability) {
    // The fusability mirror calls Schema::find like the runtime detector;
    // corrupted plans (ambiguous bare names) make both throw. The
    // resolution findings above already cover those, so degrade quietly.
    try {
      report.segments = predict_engine_segments(plan);
    } catch (const Error&) {
      report.segments.clear();
    }
  }
  if (options.maintainability) {
    try {
      report.maintainability = certify_refresh_plan(plan);
    } catch (const Error&) {
      report.maintainability.reset();
    }
    if (options.deltas != nullptr) {
      try {
        report.refresh = predict_refresh_path(plan, *options.deltas,
                                              options.database,
                                              options.view_name);
      } catch (const Error&) {
        report.refresh.reset();
      }
    }
  }
  return report;
}

namespace {

std::optional<CheckHookLevel>& check_override() {
  static std::optional<CheckHookLevel> value;
  return value;
}

CheckHookLevel parse_check_level(const char* text) {
  if (text == nullptr || *text == '\0') return CheckHookLevel::kOff;
  if (equals_icase(text, "error")) return CheckHookLevel::kError;
  if (equals_icase(text, "warn") || equals_icase(text, "warning")) {
    return CheckHookLevel::kWarn;
  }
  return CheckHookLevel::kOff;  // including explicit "off"
}

}  // namespace

CheckHookLevel check_hook_level() {
  if (check_override().has_value()) return *check_override();
  // Re-read per call so tests can flip the level; one getenv is the whole
  // cost of disabled hooks.
  if (const char* env = std::getenv("MVD_CHECK")) return parse_check_level(env);
  return CheckHookLevel::kOff;
}

void set_check_hook_level(std::optional<CheckHookLevel> level) {
  check_override() = level;
}

void check_stage_hook(const char* stage, const PlanPtr& plan,
                      const Database* database) {
  const CheckHookLevel level = check_hook_level();
  if (level == CheckHookLevel::kOff) return;
  CheckOptions opts;
  opts.database = database;
  opts.fusability = false;
  opts.maintainability = false;
  const CheckReport report = check_plan(plan, opts);
  if (report.findings.clean()) return;
  const LintReport visible = report.findings.filtered(Severity::kWarn);
  if (!visible.clean()) {
    std::cerr << "mvcheck[" << stage << "]:\n" << visible.render_text();
  }
  if (level == CheckHookLevel::kError && report.findings.has_errors()) {
    for (const Diagnostic& d : report.findings.diagnostics()) {
      if (d.severity != Severity::kError) continue;
      const std::string message = std::string("mvcheck[") + stage + "] " +
                                  d.rule + " on " + d.subject + ": " +
                                  d.message;
      // Match the exception class the runtime would raise so callers'
      // error handling (and the test suite's EXPECT_THROW assertions)
      // see the same taxonomy with or without the hook.
      if (d.rule.find("resolve") != std::string::npos) throw BindError(message);
      throw ExecError(message);
    }
  }
}

}  // namespace mvd
