#include "src/check/maintainability.hpp"

#include <optional>

#include "src/exec/exec_internal.hpp"

namespace mvd {

namespace {

/// The static half of try_group_apply's self-maintainability analysis
/// (refresh.cpp), shared by the certifier and the path predictor.
struct AggStatics {
  std::optional<std::size_t> count_spec;  // first COUNT spec index
  bool has_minmax = false;
  bool avg_ok = true;  // every AVG has a COUNT and a same-column SUM
  std::size_t n_groups = 0;
};

AggStatics agg_statics(const AggregateOp& op) {
  AggStatics s;
  s.n_groups = op.group_by().size();
  const std::vector<AggSpec>& specs = op.aggregates();
  for (std::size_t j = 0; j < specs.size(); ++j) {
    if (specs[j].fn == AggFn::kCount) {
      s.count_spec = j;
      break;
    }
  }
  for (const AggSpec& spec : specs) {
    switch (spec.fn) {
      case AggFn::kCount:
      case AggFn::kSum:
      case AggFn::kSumInt:
        break;
      case AggFn::kMin:
      case AggFn::kMax:
        s.has_minmax = true;
        break;
      case AggFn::kAvg: {
        if (!s.count_spec.has_value()) {
          s.avg_ok = false;
          break;
        }
        bool found_sum = false;
        for (const AggSpec& other : specs) {
          if (other.fn == AggFn::kSum && other.column == spec.column) {
            found_sum = true;
            break;
          }
        }
        if (!found_sum) s.avg_ok = false;
        break;
      }
    }
  }
  return s;
}

/// Why the delta algebra cannot carry a delta through `plan`'s subtree
/// (mirror of DeltaPropagator::run's nullopt sources that do not depend
/// on the batch). nullopt = propagation is structurally possible.
std::optional<std::string> propagation_refusal(const PlanPtr& plan) {
  switch (plan->kind()) {
    case OpKind::kScan:
      return std::nullopt;
    case OpKind::kSelect:
    case OpKind::kProject:
      return propagation_refusal(plan->children()[0]);
    case OpKind::kJoin: {
      if (auto r = propagation_refusal(plan->children()[0])) return r;
      if (auto r = propagation_refusal(plan->children()[1])) return r;
      const auto& join = static_cast<const JoinOp&>(*plan);
      const JoinSplit split = split_join_predicate(
          join, join.left()->output_schema(), join.right()->output_schema());
      if (split.equi.empty()) {
        return "join " + plan->label() +
               " has no hashable equi conjunct (the delta algebra joins "
               "deltas by key)";
      }
      return std::nullopt;
    }
    case OpKind::kAggregate:
      return "interior aggregate " + plan->label() +
             " is outside the delta algebra";
  }
  return std::nullopt;
}

/// Mirror of DeltaPropagator::touches.
bool touched(const PlanPtr& plan, const DeltaSet& deltas) {
  if (plan->kind() == OpKind::kScan) {
    const auto it = deltas.find(static_cast<const ScanOp&>(*plan).relation());
    return it != deltas.end() && !it->second.empty();
  }
  for (const PlanPtr& child : plan->children()) {
    if (touched(child, deltas)) return true;
  }
  return false;
}

/// Does any touched scan leaf carry deletes after compaction? (delta_scan
/// compacts each leaf delta, so an insert-only compacted frontier feeds
/// insert-only deltas into the whole propagation.)
bool leaf_deletes(const PlanPtr& plan, const DeltaSet& deltas) {
  if (plan->kind() == OpKind::kScan) {
    const auto it = deltas.find(static_cast<const ScanOp&>(*plan).relation());
    return it != deltas.end() && !it->second.empty() &&
           it->second.compacted().deletes().row_count() > 0;
  }
  for (const PlanPtr& child : plan->children()) {
    if (leaf_deletes(child, deltas)) return true;
  }
  return false;
}

/// Whether propagation reaches past `plan`, and whether the delta it
/// would produce is provably empty.
enum class Prop { kYes, kNo, kMaybe };
struct Flow {
  Prop prop = Prop::kYes;
  bool empty = false;  // if propagation succeeds, the delta is empty
};

Flow flow(const PlanPtr& plan, const DeltaSet& deltas) {
  switch (plan->kind()) {
    case OpKind::kScan:
      return {Prop::kYes, !touched(plan, deltas)};
    case OpKind::kSelect:
    case OpKind::kProject:
      return flow(plan->children()[0], deltas);
    case OpKind::kJoin: {
      const Flow l = flow(plan->children()[0], deltas);
      const Flow r = flow(plan->children()[1], deltas);
      if (l.prop == Prop::kNo || r.prop == Prop::kNo) return {Prop::kNo, false};
      const Prop base = (l.prop == Prop::kMaybe || r.prop == Prop::kMaybe)
                            ? Prop::kMaybe
                            : Prop::kYes;
      // delta_join returns the empty delta *before* the equi-split check
      // when both side deltas are empty.
      if (l.empty && r.empty) return {base, true};
      const auto& join = static_cast<const JoinOp&>(*plan);
      const JoinSplit split = split_join_predicate(
          join, join.left()->output_schema(), join.right()->output_schema());
      if (split.equi.empty()) {
        // Propagates only if both deltas dynamically compact to empty —
        // in which case the output is empty too.
        return {Prop::kMaybe, true};
      }
      return {base, false};
    }
    case OpKind::kAggregate:
      return {Prop::kNo, false};
  }
  return {Prop::kNo, false};
}

}  // namespace

std::string to_string(MaintVerdict verdict) {
  switch (verdict) {
    case MaintVerdict::kSelfMaintainable:
      return "self-maintainable";
    case MaintVerdict::kInsertOnly:
      return "insert-only";
    case MaintVerdict::kExtremumHazard:
      return "extremum-hazard";
    case MaintVerdict::kNotMaintainable:
      return "not-maintainable";
  }
  return "?";
}

std::string to_string(PredictedPath path) {
  switch (path) {
    case PredictedPath::kSkip:
      return "skip";
    case PredictedPath::kIncremental:
      return "incremental";
    case PredictedPath::kRecompute:
      return "recompute";
    case PredictedPath::kDataDependent:
      return "data-dependent";
  }
  return "?";
}

MaintCertificate certify_refresh_plan(const PlanPtr& plan) {
  MaintCertificate cert;
  if (plan->kind() != OpKind::kAggregate) {
    if (auto refusal = propagation_refusal(plan)) {
      cert.verdict = MaintVerdict::kNotMaintainable;
      cert.reason = *refusal;
    }
    return cert;
  }
  const auto& agg = static_cast<const AggregateOp&>(*plan);
  if (auto refusal = propagation_refusal(plan->children()[0])) {
    cert.verdict = MaintVerdict::kNotMaintainable;
    cert.reason = *refusal;
    return cert;
  }
  const AggStatics s = agg_statics(agg);
  if (!s.avg_ok) {
    cert.verdict = MaintVerdict::kNotMaintainable;
    cert.reason =
        "AVG without a COUNT and a same-column SUM cannot be reconstructed "
        "from deltas (the stored average is a rounded quotient)";
    return cert;
  }
  if (s.n_groups == 0 && s.has_minmax && !s.count_spec.has_value()) {
    cert.verdict = MaintVerdict::kNotMaintainable;
    cert.reason =
        "global MIN/MAX without a COUNT cannot distinguish the empty-input "
        "placeholder row from real extrema";
    return cert;
  }
  if (!s.count_spec.has_value()) {
    cert.verdict = MaintVerdict::kInsertOnly;
    cert.reason = "deletes need a COUNT to detect emptied groups";
    return cert;
  }
  if (s.has_minmax) {
    cert.verdict = MaintVerdict::kExtremumHazard;
    cert.reason =
        "a delete reaching the stored MIN/MAX extremum forces recompute";
    return cert;
  }
  return cert;
}

RefreshPrediction predict_refresh_path(const PlanPtr& plan,
                                       const DeltaSet& deltas,
                                       const Database* db,
                                       const std::string& view_name) {
  RefreshPrediction out;
  if (!touched(plan, deltas)) {
    out.path = PredictedPath::kSkip;
    out.reason = "no pending delta reaches the plan's scan leaves";
    return out;
  }
  if (plan->kind() != OpKind::kAggregate) {
    const Flow f = flow(plan, deltas);
    switch (f.prop) {
      case Prop::kYes:
        out.path = PredictedPath::kIncremental;
        out.reason = "the delta algebra covers the whole plan";
        return out;
      case Prop::kNo:
        out.path = PredictedPath::kRecompute;
        out.reason = "delta propagation cannot reach the root";
        return out;
      case Prop::kMaybe:
        out.path = PredictedPath::kDataDependent;
        out.reason =
            "a non-equi join propagates only when both side deltas are empty";
        return out;
    }
  }

  const auto& agg = static_cast<const AggregateOp&>(*plan);
  const Flow f = flow(plan->children()[0], deltas);
  if (f.prop == Prop::kNo) {
    out.path = PredictedPath::kRecompute;
    out.reason = "delta propagation stops below the aggregate";
    return out;
  }
  const AggStatics s = agg_statics(agg);
  std::string static_fail;
  if (!s.avg_ok) {
    static_fail = "AVG without a COUNT and a same-column SUM";
  } else if (s.n_groups == 0 && s.has_minmax && !s.count_spec.has_value()) {
    static_fail = "global MIN/MAX without a COUNT";
  }
  if (f.prop == Prop::kMaybe) {
    out.path = PredictedPath::kDataDependent;
    out.reason =
        "a non-equi join propagates only when both side deltas are empty";
    return out;
  }
  if (f.empty) {
    // Unreachable when the plan is touched, kept for completeness: an
    // empty child delta short-circuits to a trivial group-apply.
    out.path = PredictedPath::kIncremental;
    out.reason = "provably empty child delta group-applies trivially";
    return out;
  }
  if (!static_fail.empty()) {
    out.path = PredictedPath::kDataDependent;
    out.reason = "not self-maintainable (" + static_fail +
                 "): an empty child delta still group-applies, anything else "
                 "recomputes";
    return out;
  }
  if (!leaf_deletes(plan, deltas)) {
    // Insert-only frontier: Δσ/Δπ preserve signs and the Δ⋈ correction
    // term's deletes cancel under compaction, so the aggregate sees an
    // insert-only batch — no delete-driven fallback can fire.
    if (s.n_groups == 0 && s.has_minmax) {
      // try_group_apply still refuses when the stored global row is the
      // empty-input placeholder (old COUNT == 0).
      bool stored_ok = false;
      if (db != nullptr && !view_name.empty() && db->has_table(view_name)) {
        const Table& stored = db->table(view_name);
        if (stored.row_count() > 0 &&
            stored.row(0)[s.n_groups + *s.count_spec].as_int64() > 0) {
          stored_ok = true;
        }
      }
      if (!stored_ok) {
        out.path = PredictedPath::kDataDependent;
        out.reason =
            "global MIN/MAX over a possible empty-input placeholder row";
        return out;
      }
    }
    out.path = PredictedPath::kIncremental;
    out.reason = "insert-only batch maintains every aggregate class";
    return out;
  }
  if (!s.count_spec.has_value()) {
    out.path = PredictedPath::kDataDependent;
    out.reason =
        "a delete surviving to the aggregate forces recompute without a "
        "COUNT (whether one survives depends on the data)";
    return out;
  }
  if (s.has_minmax) {
    out.path = PredictedPath::kDataDependent;
    out.reason =
        "a delete reaching a stored MIN/MAX extremum forces recompute "
        "(whether one does depends on the data)";
    return out;
  }
  if (s.n_groups == 0) {
    // COUNT-covered global aggregate: a deleting batch can empty the
    // input, which group-apply handles via the placeholder row.
    out.path = PredictedPath::kIncremental;
    out.reason = "COUNT-covered global aggregate group-applies any "
                 "consistent batch";
    return out;
  }
  out.path = PredictedPath::kIncremental;
  out.reason = "COUNT-covered aggregate group-applies any consistent batch";
  return out;
}

}  // namespace mvd
