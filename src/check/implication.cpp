#include "src/check/implication.hpp"

#include <cmath>
#include <limits>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"

namespace mvd {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool integral_type(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDate;
}

/// Values whose comparison is defined at runtime (Value::compare throws
/// across incompatible types).
bool comparable(ValueType a, ValueType b) {
  return (is_numeric(a) && is_numeric(b)) || a == b;
}

/// find() that answers nullopt instead of throwing on ambiguous bare
/// names — facts over a malformed schema stay conservative.
std::optional<std::size_t> safe_find(const Schema& schema,
                                     const std::string& name) {
  try {
    return schema.find(name);
  } catch (const BindError&) {
    return std::nullopt;
  }
}

bool is_nan(double v) { return v != v; }

/// `have` between two distinct columns implies `want` between them.
bool op_implies(CompareOp have, CompareOp want) {
  if (have == want) return true;
  switch (have) {
    case CompareOp::kEq:
      return want == CompareOp::kLe || want == CompareOp::kGe;
    case CompareOp::kLt:
      return want == CompareOp::kLe || want == CompareOp::kNe;
    case CompareOp::kGt:
      return want == CompareOp::kGe || want == CompareOp::kNe;
    default:
      return false;
  }
}

const ColumnExpr* as_col(const Expr* e) {
  return e->kind() == ExprKind::kColumn ? static_cast<const ColumnExpr*>(e)
                                        : nullptr;
}

const LiteralExpr* as_lit(const Expr* e) {
  return e->kind() == ExprKind::kLiteral ? static_cast<const LiteralExpr*>(e)
                                         : nullptr;
}

/// The interval of values x with `x op v`.
ValueInterval interval_of(CompareOp op, double v) {
  switch (op) {
    case CompareOp::kEq:
      return ValueInterval::point(v);
    case CompareOp::kLt:
      return ValueInterval::at_most(v, /*open=*/true);
    case CompareOp::kLe:
      return ValueInterval::at_most(v, /*open=*/false);
    case CompareOp::kGt:
      return ValueInterval::at_least(v, /*open=*/true);
    case CompareOp::kGe:
      return ValueInterval::at_least(v, /*open=*/false);
    case CompareOp::kNe:
      break;  // not convex; handled by the ne-sets
  }
  return ValueInterval();
}

}  // namespace

// ---- ValueInterval -----------------------------------------------------

ValueInterval::ValueInterval() : lo(-kInf), hi(kInf) {}

ValueInterval ValueInterval::point(double v) {
  ValueInterval i;
  i.lo = i.hi = v;
  return i;
}

ValueInterval ValueInterval::at_least(double v, bool open) {
  ValueInterval i;
  i.lo = v;
  i.lo_open = open;
  return i;
}

ValueInterval ValueInterval::at_most(double v, bool open) {
  ValueInterval i;
  i.hi = v;
  i.hi_open = open;
  return i;
}

bool ValueInterval::empty() const {
  if (lo > hi) return true;
  return lo == hi && (lo_open || hi_open);
}

bool ValueInterval::contains_point(double v) const {
  if (v < lo || (v == lo && lo_open)) return false;
  if (v > hi || (v == hi && hi_open)) return false;
  return true;
}

bool ValueInterval::contains(const ValueInterval& other) const {
  if (other.empty()) return true;
  const bool lo_ok = lo < other.lo || (lo == other.lo && (!lo_open || other.lo_open));
  const bool hi_ok = hi > other.hi || (hi == other.hi && (!hi_open || other.hi_open));
  return lo_ok && hi_ok;
}

bool ValueInterval::strictly_below(const ValueInterval& other) const {
  if (empty() || other.empty()) return true;
  return hi < other.lo || (hi == other.lo && (hi_open || other.lo_open));
}

bool ValueInterval::weakly_below(const ValueInterval& other) const {
  if (empty() || other.empty()) return true;
  if (hi < other.lo) return true;
  return hi == other.lo && !std::isinf(hi);
}

bool ValueInterval::disjoint(const ValueInterval& other) const {
  return strictly_below(other) || other.strictly_below(*this);
}

std::optional<double> ValueInterval::singleton() const {
  if (lo == hi && !lo_open && !hi_open && !std::isinf(lo)) return lo;
  return std::nullopt;
}

ValueInterval ValueInterval::intersect(const ValueInterval& other) const {
  ValueInterval out = *this;
  if (other.lo > out.lo || (other.lo == out.lo && other.lo_open)) {
    out.lo = other.lo;
    out.lo_open = other.lo_open;
  }
  if (other.hi < out.hi || (other.hi == out.hi && other.hi_open)) {
    out.hi = other.hi;
    out.hi_open = other.hi_open;
  }
  return out;
}

ValueInterval ValueInterval::integral_tightened() const {
  ValueInterval out = *this;
  if (!std::isinf(out.lo)) {
    out.lo = out.lo_open ? std::floor(out.lo) + 1 : std::ceil(out.lo);
    out.lo_open = false;
  }
  if (!std::isinf(out.hi)) {
    out.hi = out.hi_open ? std::ceil(out.hi) - 1 : std::floor(out.hi);
    out.hi_open = false;
  }
  return out;
}

// ---- PredicateFacts ----------------------------------------------------

PredicateFacts::PredicateFacts(Schema schema) : schema_(std::move(schema)) {}

PredicateFacts::PredicateFacts(const ExprPtr& predicate, Schema schema)
    : schema_(std::move(schema)) {
  add(predicate);
}

void PredicateFacts::add(const ExprPtr& conjunct) {
  if (conjunct == nullptr) return;
  for (const ExprPtr& c : conjuncts_of(normalize(conjunct))) {
    conjuncts_.push_back(c);
  }
  index_dirty_ = true;
}

std::size_t PredicateFacts::find_rep(std::size_t col) const {
  while (parent_[col] != col) {
    parent_[col] = parent_[parent_[col]];
    col = parent_[col];
  }
  return col;
}

bool PredicateFacts::class_integral(std::size_t rep) const {
  // A class holds one common value per row; if any member column's type
  // is integral, that value lies on the integer lattice.
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    if (find_rep(i) == rep && integral_type(schema_.at(i).type)) return true;
  }
  return false;
}

PredicateFacts::ClassState& PredicateFacts::state_of(std::size_t col) {
  return classes_[find_rep(col)];
}

ValueInterval PredicateFacts::effective_interval(std::size_t col) const {
  const ClassState* s = state_ptr(col);
  const bool integral = class_integral(find_rep(col));
  ValueInterval iv = s != nullptr ? s->interval : ValueInterval();
  if (integral) iv = iv.integral_tightened();
  if (s == nullptr || s->num_ne.empty()) return iv;
  // A closed endpoint the ne-set excludes opens: [5, H] with x != 5 is
  // (5, H]. On an integral class the opened endpoint re-tightens to the
  // next integer, which may itself be excluded — iterate. Each round
  // consumes at least one ne entry, so |ne| rounds suffice.
  for (std::size_t round = 0; round <= s->num_ne.size(); ++round) {
    bool changed = false;
    if (!std::isinf(iv.lo) && !iv.lo_open && s->num_ne.count(iv.lo) > 0) {
      iv.lo_open = true;
      changed = true;
    }
    if (!std::isinf(iv.hi) && !iv.hi_open && s->num_ne.count(iv.hi) > 0) {
      iv.hi_open = true;
      changed = true;
    }
    if (!changed) break;
    if (integral) iv = iv.integral_tightened();
  }
  return iv;
}

const PredicateFacts::ClassState* PredicateFacts::state_ptr(
    std::size_t col) const {
  const auto it = classes_.find(find_rep(col));
  return it == classes_.end() ? nullptr : &it->second;
}

void PredicateFacts::union_cols(std::size_t a, std::size_t b) {
  const std::size_t ra = find_rep(a);
  const std::size_t rb = find_rep(b);
  if (ra == rb) return;
  parent_[rb] = ra;
  const auto bit = classes_.find(rb);
  if (bit == classes_.end()) return;
  ClassState& into = classes_[ra];
  const ClassState& from = bit->second;
  into.interval = into.interval.intersect(from.interval);
  if (from.str_eq.has_value()) {
    if (into.str_eq.has_value() && *into.str_eq != *from.str_eq) {
      contradiction_ = true;
    }
    into.str_eq = from.str_eq;
  }
  into.str_ne.insert(from.str_ne.begin(), from.str_ne.end());
  if (from.bool_eq.has_value()) {
    if (into.bool_eq.has_value() && *into.bool_eq != *from.bool_eq) {
      contradiction_ = true;
    }
    into.bool_eq = from.bool_eq;
  }
  into.num_ne.insert(from.num_ne.begin(), from.num_ne.end());
  classes_.erase(bit);
}

void PredicateFacts::rebuild_index() const {
  parent_.resize(schema_.size());
  for (std::size_t i = 0; i < parent_.size(); ++i) parent_[i] = i;
  classes_.clear();
  orders_.clear();
  conjunct_texts_.clear();
  contradiction_ = false;

  auto* self = const_cast<PredicateFacts*>(this);

  // Pass 1: record texts, union the col = col equalities so every later
  // fact lands on final equivalence classes.
  for (const ExprPtr& c : conjuncts_) {
    conjunct_texts_.insert(c->to_string());
    if (c->kind() != ExprKind::kComparison) continue;
    const auto& cmp = static_cast<const ComparisonExpr&>(*c);
    if (cmp.op() != CompareOp::kEq) continue;
    const ColumnExpr* l = as_col(cmp.lhs().get());
    const ColumnExpr* r = as_col(cmp.rhs().get());
    if (l == nullptr || r == nullptr) continue;
    const auto li = safe_find(schema_, l->name());
    const auto ri = safe_find(schema_, r->name());
    if (!li.has_value() || !ri.has_value()) continue;
    if (!comparable(schema_.at(*li).type, schema_.at(*ri).type)) continue;
    self->union_cols(*li, *ri);
  }

  // Pass 2: per-conjunct facts.
  for (const ExprPtr& c : conjuncts_) self->ingest(c);

  // Pass 3: ordering edges tighten intervals until fixpoint (edge count
  // bounds the chain length, so |edges| rounds suffice).
  for (std::size_t round = 0; round <= orders_.size(); ++round) {
    for (const OrderEdge& e : orders_) self->refine_order(e);
  }

  // Pass 4: joint satisfiability.
  for (const auto& [rep, s] : classes_) {
    const ValueInterval iv = effective_interval(rep);
    if (iv.empty()) self->mark_contradiction();
    if (const auto v = iv.singleton(); v.has_value() && s.num_ne.count(*v)) {
      self->mark_contradiction();
    }
    if (s.str_eq.has_value() && s.str_ne.count(*s.str_eq)) {
      self->mark_contradiction();
    }
  }
  index_dirty_ = false;
}

void PredicateFacts::ingest(const ExprPtr& conjunct) {
  switch (conjunct->kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(*conjunct).value();
      if (v.type() == ValueType::kBool && !v.as_bool()) mark_contradiction();
      return;
    }
    case ExprKind::kColumn: {
      const auto i = safe_find(schema_, static_cast<const ColumnExpr&>(*conjunct).name());
      if (!i.has_value() || schema_.at(*i).type != ValueType::kBool) return;
      ClassState& s = state_of(*i);
      if (s.bool_eq.has_value() && !*s.bool_eq) mark_contradiction();
      s.bool_eq = true;
      return;
    }
    case ExprKind::kNot: {
      const ExprPtr& inner = static_cast<const NotExpr&>(*conjunct).operand();
      if (inner->kind() == ExprKind::kOr) {
        // De Morgan as a fact source: NOT (A OR B) asserts both NOT A and
        // NOT B, which land in the index as real constraints.
        for (const ExprPtr& o : static_cast<const BoolExpr&>(*inner).operands()) {
          ingest(normalize(neg(o)));
        }
        return;
      }
      const ColumnExpr* c = as_col(inner.get());
      if (c == nullptr) return;
      const auto i = safe_find(schema_, c->name());
      if (!i.has_value() || schema_.at(*i).type != ValueType::kBool) return;
      ClassState& s = state_of(*i);
      if (s.bool_eq.has_value() && *s.bool_eq) mark_contradiction();
      s.bool_eq = false;
      return;
    }
    case ExprKind::kComparison:
      ingest_comparison(static_cast<const ComparisonExpr&>(*conjunct));
      return;
    case ExprKind::kAnd:
    case ExprKind::kOr:
      return;  // conjuncts_of unfolds AND; OR stays syntactic
  }
}

void PredicateFacts::ingest_comparison(const ComparisonExpr& c) {
  const ColumnExpr* lc = as_col(c.lhs().get());
  const LiteralExpr* rl = as_lit(c.rhs().get());
  const ColumnExpr* rc = as_col(c.rhs().get());

  if (lc == nullptr) {
    // Literal-vs-literal (normalize orients columns first, so no column
    // hides on the right): fold — a false constraint is a contradiction.
    const ExprPtr folded = fold_constants(
        cmp(c.op(), c.lhs(), c.rhs()));
    if (const LiteralExpr* l = as_lit(folded.get());
        l != nullptr && l->value().type() == ValueType::kBool &&
        !l->value().as_bool()) {
      mark_contradiction();
    }
    return;
  }
  const auto li = safe_find(schema_, lc->name());
  if (!li.has_value()) return;
  const ValueType lt = schema_.at(*li).type;

  if (rl != nullptr) {
    const Value& v = rl->value();
    if (is_numeric(lt) && is_numeric(v.type())) {
      const double d = v.as_double();
      if (is_nan(d)) return;
      ClassState& s = state_of(*li);
      const bool integral = class_integral(find_rep(*li));
      if (c.op() == CompareOp::kNe) {
        if (integral && d != std::floor(d)) return;  // trivially true
        s.num_ne.insert(d);
        return;
      }
      ValueInterval target = interval_of(c.op(), d);
      if (integral) target = target.integral_tightened();
      s.interval = s.interval.intersect(target);
      return;
    }
    if (lt == ValueType::kString && v.type() == ValueType::kString) {
      ClassState& s = state_of(*li);
      if (c.op() == CompareOp::kEq) {
        if (s.str_eq.has_value() && *s.str_eq != v.as_string()) {
          mark_contradiction();
        }
        s.str_eq = v.as_string();
      } else if (c.op() == CompareOp::kNe) {
        s.str_ne.insert(v.as_string());
      }
      return;  // string ordering stays syntactic
    }
    if (lt == ValueType::kBool && v.type() == ValueType::kBool) {
      if (c.op() != CompareOp::kEq && c.op() != CompareOp::kNe) return;
      const bool want = c.op() == CompareOp::kEq ? v.as_bool() : !v.as_bool();
      ClassState& s = state_of(*li);
      if (s.bool_eq.has_value() && *s.bool_eq != want) mark_contradiction();
      s.bool_eq = want;
      return;
    }
    return;  // cross-type: runtime error territory, stays syntactic
  }

  if (rc == nullptr) return;
  const auto ri = safe_find(schema_, rc->name());
  if (!ri.has_value()) return;
  const ValueType rt = schema_.at(*ri).type;
  if (!comparable(lt, rt)) return;
  const std::size_t ra = find_rep(*li);
  const std::size_t rb = find_rep(*ri);
  if (ra == rb) {
    // x and y provably equal: x <= y / x >= y are tautologies, strict
    // orders and disequality are contradictions. kEq was pass 1.
    if (c.op() == CompareOp::kLt || c.op() == CompareOp::kGt ||
        c.op() == CompareOp::kNe) {
      mark_contradiction();
    }
    return;
  }
  if (c.op() == CompareOp::kEq) return;  // incomparable-type eq: syntactic
  if (is_numeric(lt) && is_numeric(rt)) {
    orders_.push_back(OrderEdge{ra, c.op(), rb});
  }
}

void PredicateFacts::refine_order(const OrderEdge& e) {
  if (e.op == CompareOp::kNe) return;
  ClassState& l = classes_[e.left];
  ClassState& r = classes_[e.right];
  // a < b and b <= H imply a < H; a < b and a >= L imply b > L. The
  // non-strict forms inherit the neighbour's openness.
  const bool strict = e.op == CompareOp::kLt || e.op == CompareOp::kGt;
  ClassState& below = (e.op == CompareOp::kLt || e.op == CompareOp::kLe) ? l : r;
  ClassState& above = (e.op == CompareOp::kLt || e.op == CompareOp::kLe) ? r : l;
  if (!std::isinf(above.interval.hi)) {
    below.interval = below.interval.intersect(ValueInterval::at_most(
        above.interval.hi, strict || above.interval.hi_open));
  }
  if (!std::isinf(below.interval.lo)) {
    above.interval = above.interval.intersect(ValueInterval::at_least(
        below.interval.lo, strict || below.interval.lo_open));
  }
}

bool PredicateFacts::contradictory() const {
  if (index_dirty_) rebuild_index();
  return contradiction_;
}

bool PredicateFacts::entails(const ExprPtr& conjunct) const {
  if (conjunct == nullptr) return true;
  if (index_dirty_) rebuild_index();
  if (contradiction_) return true;  // ex falso
  const ExprPtr n = normalize(conjunct);
  for (const ExprPtr& c : conjuncts_of(n)) {
    if (!entails_indexed(c)) return false;
  }
  return true;
}

bool PredicateFacts::entails_indexed(const ExprPtr& c) const {
  if (conjunct_texts_.count(c->to_string())) return true;
  switch (c->kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(*c).value();
      return v.type() == ValueType::kBool && v.as_bool();
    }
    case ExprKind::kColumn: {
      const auto i = safe_find(schema_, static_cast<const ColumnExpr&>(*c).name());
      if (!i.has_value()) return false;
      const ClassState* s = state_ptr(*i);
      return s != nullptr && s->bool_eq == true;
    }
    case ExprKind::kNot: {
      const ExprPtr& inner = static_cast<const NotExpr&>(*c).operand();
      if (const ColumnExpr* col = as_col(inner.get()); col != nullptr) {
        const auto i = safe_find(schema_, col->name());
        if (!i.has_value()) return false;
        const ClassState* s = state_ptr(*i);
        return s != nullptr && s->bool_eq == false;
      }
      // De Morgan: NOT (A AND B) holds wherever some NOT A_i holds;
      // NOT (A OR B) needs every NOT A_i. normalize() already pushed NOT
      // through comparisons and double negations, so only AND/OR remain.
      if (inner->kind() == ExprKind::kAnd || inner->kind() == ExprKind::kOr) {
        const bool need_all = inner->kind() == ExprKind::kOr;
        for (const ExprPtr& o : static_cast<const BoolExpr&>(*inner).operands()) {
          const bool holds = entails_indexed(normalize(neg(o)));
          if (holds && !need_all) return true;
          if (!holds && need_all) return false;
        }
        return need_all;
      }
      return false;
    }
    case ExprKind::kOr: {
      for (const ExprPtr& o : static_cast<const BoolExpr&>(*c).operands()) {
        if (entails_indexed(o)) return true;
      }
      return false;
    }
    case ExprKind::kAnd: {
      for (const ExprPtr& o : static_cast<const BoolExpr&>(*c).operands()) {
        if (!entails_indexed(o)) return false;
      }
      return true;
    }
    case ExprKind::kComparison:
      return entails_comparison(static_cast<const ComparisonExpr&>(*c));
  }
  return false;
}

bool PredicateFacts::entails_comparison(const ComparisonExpr& c) const {
  const ColumnExpr* lc = as_col(c.lhs().get());
  const LiteralExpr* rl = as_lit(c.rhs().get());
  const ColumnExpr* rc = as_col(c.rhs().get());

  if (lc == nullptr) {
    const ExprPtr folded = fold_constants(cmp(c.op(), c.lhs(), c.rhs()));
    const LiteralExpr* l = as_lit(folded.get());
    return l != nullptr && l->value().type() == ValueType::kBool &&
           l->value().as_bool();
  }
  const auto li = safe_find(schema_, lc->name());
  if (!li.has_value()) return false;
  const ValueType lt = schema_.at(*li).type;

  if (rl != nullptr) {
    const Value& v = rl->value();
    if (is_numeric(lt) && is_numeric(v.type())) {
      const double d = v.as_double();
      if (is_nan(d)) return false;
      const ClassState* s = state_ptr(*li);
      const bool integral = class_integral(find_rep(*li));
      const ValueInterval have = effective_interval(*li);
      if (c.op() == CompareOp::kNe) {
        if (integral && d != std::floor(d)) return true;
        if (!have.contains_point(d)) return true;
        return s != nullptr && s->num_ne.count(d) > 0;
      }
      ValueInterval target = interval_of(c.op(), d);
      if (integral) target = target.integral_tightened();
      return target.contains(have);
    }
    if (lt == ValueType::kString && v.type() == ValueType::kString) {
      const ClassState* s = state_ptr(*li);
      if (s == nullptr) return false;
      if (c.op() == CompareOp::kEq) return s->str_eq == v.as_string();
      if (c.op() == CompareOp::kNe) {
        return (s->str_eq.has_value() && *s->str_eq != v.as_string()) ||
               s->str_ne.count(v.as_string()) > 0;
      }
      return false;
    }
    if (lt == ValueType::kBool && v.type() == ValueType::kBool) {
      const ClassState* s = state_ptr(*li);
      if (s == nullptr || !s->bool_eq.has_value()) return false;
      if (c.op() == CompareOp::kEq) return *s->bool_eq == v.as_bool();
      if (c.op() == CompareOp::kNe) return *s->bool_eq != v.as_bool();
      return false;
    }
    return false;
  }

  if (rc == nullptr) return false;
  const auto ri = safe_find(schema_, rc->name());
  if (!ri.has_value()) return false;
  const ValueType rt = schema_.at(*ri).type;
  const std::size_t ra = find_rep(*li);
  const std::size_t rb = find_rep(*ri);
  if (ra == rb) {
    return c.op() == CompareOp::kEq || c.op() == CompareOp::kLe ||
           c.op() == CompareOp::kGe;
  }
  for (const OrderEdge& e : orders_) {
    if (e.left == ra && e.right == rb && op_implies(e.op, c.op())) return true;
    if (e.left == rb && e.right == ra && op_implies(flip(e.op), c.op())) {
      return true;
    }
  }
  if (is_numeric(lt) && is_numeric(rt)) {
    const ValueInterval a = effective_interval(*li);
    const ValueInterval b = effective_interval(*ri);
    switch (c.op()) {
      case CompareOp::kLt:
        return a.strictly_below(b);
      case CompareOp::kLe:
        return a.weakly_below(b);
      case CompareOp::kGt:
        return b.strictly_below(a);
      case CompareOp::kGe:
        return b.weakly_below(a);
      case CompareOp::kNe:
        return a.disjoint(b);
      case CompareOp::kEq: {
        const auto av = a.singleton();
        const auto bv = b.singleton();
        return av.has_value() && bv.has_value() && *av == *bv;
      }
    }
  }
  return false;
}

// ---- Free functions ----------------------------------------------------

bool implies(const ExprPtr& p, const ExprPtr& q, const Schema& schema) {
  if (q == nullptr) return true;
  PredicateFacts facts(p, schema);
  return facts.entails(q);
}

bool contradictory(const ExprPtr& p, const Schema& schema) {
  return PredicateFacts(p, schema).contradictory();
}

bool tautological(const ExprPtr& p, const Schema& schema) {
  if (p == nullptr) return true;
  return PredicateFacts(schema).entails(p);
}

ExprPtr fold_constants(const ExprPtr& expr) {
  if (expr == nullptr) return nullptr;
  switch (expr->kind()) {
    case ExprKind::kColumn:
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(*expr);
      const ExprPtr l = fold_constants(c.lhs());
      const ExprPtr r = fold_constants(c.rhs());
      const LiteralExpr* ll = as_lit(l.get());
      const LiteralExpr* rr = as_lit(r.get());
      if (ll != nullptr && rr != nullptr) {
        const Value& a = ll->value();
        const Value& b = rr->value();
        const bool nan =
            (a.type() == ValueType::kDouble && is_nan(a.as_double())) ||
            (b.type() == ValueType::kDouble && is_nan(b.as_double()));
        if (comparable(a.type(), b.type()) && !nan) {
          const auto ord = a.compare(b);
          bool res = false;
          switch (c.op()) {
            case CompareOp::kEq: res = ord == 0; break;
            case CompareOp::kNe: res = ord != 0; break;
            case CompareOp::kLt: res = ord < 0; break;
            case CompareOp::kLe: res = ord <= 0; break;
            case CompareOp::kGt: res = ord > 0; break;
            case CompareOp::kGe: res = ord >= 0; break;
          }
          return lit(Value::boolean(res));
        }
      }
      const ColumnExpr* cl = as_col(l.get());
      const ColumnExpr* cr = as_col(r.get());
      if (cl != nullptr && cr != nullptr && cl->name() == cr->name()) {
        // Same column on both sides: the comparison is decided by the op.
        const bool res = c.op() == CompareOp::kEq ||
                         c.op() == CompareOp::kLe || c.op() == CompareOp::kGe;
        return lit(Value::boolean(res));
      }
      if (l == c.lhs() && r == c.rhs()) return expr;
      return cmp(c.op(), l, r);
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const auto& b = static_cast<const BoolExpr&>(*expr);
      const bool is_and = expr->kind() == ExprKind::kAnd;
      std::vector<ExprPtr> kept;
      bool changed = false;
      for (const ExprPtr& o : b.operands()) {
        const ExprPtr f = fold_constants(o);
        if (f != o) changed = true;
        if (const LiteralExpr* fl = as_lit(f.get());
            fl != nullptr && fl->value().type() == ValueType::kBool) {
          const bool v = fl->value().as_bool();
          if (v == is_and) {
            changed = true;  // neutral operand: drop
            continue;
          }
          return lit(Value::boolean(!is_and));  // absorbing operand
        }
        kept.push_back(f);
      }
      if (!changed) return expr;
      if (kept.empty()) return lit(Value::boolean(is_and));
      if (kept.size() == 1) return kept[0];
      return is_and ? conj(std::move(kept)) : disj(std::move(kept));
    }
    case ExprKind::kNot: {
      const auto& n = static_cast<const NotExpr&>(*expr);
      const ExprPtr o = fold_constants(n.operand());
      if (const LiteralExpr* ol = as_lit(o.get());
          ol != nullptr && ol->value().type() == ValueType::kBool) {
        return lit(Value::boolean(!ol->value().as_bool()));
      }
      if (o == n.operand()) return expr;
      return neg(o);
    }
  }
  MVD_ASSERT(false);
  return expr;
}

}  // namespace mvd
