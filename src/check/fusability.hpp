// Static fusability prediction — a pure mirror of the fused engine's
// detect_fused_chain acceptance rules (src/exec/fused.cpp) that never
// touches data and explains its refusals.
//
// The runtime detector answers yes/no; this predictor reproduces that
// verdict bit-for-bit (the differential tests assert equality on every
// node of every fuzzed plan) and, on refusal, names the first rule that
// failed: OR/NOT/non-comparison conjuncts, boolean or mixed-type
// comparisons, unresolved columns, shared interior DAG nodes, degenerate
// predicates, pure-projection chains. Keeping the two in lockstep is a
// maintenance contract: any relaxation of the kernel layer must land in
// both places or the agreement tests fail.
//
// This header intentionally does not include src/exec (the Executor's
// pre-execution hook includes us); the few acceptance constants it needs
// (ColumnKind classification) come from the storage layer.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "src/algebra/logical_plan.hpp"

namespace mvd {

/// Verdict for the chain rooted at one node. `fusable` matches
/// detect_fused_chain(node).has_value(); the remaining fields mirror the
/// FusedChain it would compile.
struct FusePrediction {
  bool fusable = false;
  /// Why not — empty when fusable. For nodes that are not select/project
  /// roots this is the generic "not a select/project" refusal.
  std::string refusal;
  /// The chain's source node (executed by the normal engine).
  PlanPtr source;
  std::size_t stage_count = 0;   // chain nodes (selects + projects)
  std::size_t select_count = 0;  // fused select stages
  Schema out_schema;             // chain output schema
};

/// Mirror of plan_use_counts + detect_fused_chain. `use_count` must come
/// from the *root* plan the engine would run (sharing is a property of
/// the whole DAG, not the subtree).
FusePrediction predict_fused_chain(
    const PlanPtr& plan,
    const std::map<const LogicalOp*, std::size_t>& use_count);

/// One fused segment the vectorized engine's fused walk would form.
struct ChainSegment {
  const LogicalOp* head = nullptr;
  FusePrediction prediction;
};

/// Replay the fused engine's plan walk (vectorized.cpp node()): from the
/// root, each select/project either heads a fused chain (walk resumes at
/// the chain source) or falls back to interpreted execution (walk resumes
/// at its children). Returns every select/project head the walk visits,
/// with its prediction — the per-segment fusability report.
std::vector<ChainSegment> predict_engine_segments(const PlanPtr& plan);

}  // namespace mvd
