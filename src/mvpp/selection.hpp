// Materialized-view selection over an annotated MVPP.
//
// Implements the paper's Figure 9 heuristic plus the baselines used by the
// benches: the trivial strategies bounding the spectrum (nothing / all
// query results / every operation node), an exhaustive 2^n optimum for
// ground truth on small graphs, an exact-gain greedy (HRU-style), and a
// simulated-annealing search for larger graphs.
#pragma once

#include <string>
#include <vector>

#include "src/common/random.hpp"
#include "src/mvpp/evaluation.hpp"

namespace mvd {

struct SelectionResult {
  std::string algorithm;
  MaterializedSet materialized;
  MvppCosts costs;
  /// Human-readable decision log (the §4.3 walkthrough lines for the Yang
  /// heuristic).
  std::vector<std::string> trace;
};

/// Evaluate an explicitly chosen set (for what-if analysis and Table 2).
SelectionResult evaluate_strategy(const MvppEvaluator& eval, std::string name,
                                  MaterializedSet m);

/// M = ∅: everything virtual.
SelectionResult select_nothing(const MvppEvaluator& eval);

/// M = the result node of every query (materialize all application views).
SelectionResult select_all_query_results(const MvppEvaluator& eval);

/// M = every operation node.
SelectionResult select_all_operations(const MvppEvaluator& eval);

struct YangOptions {
  /// Step 7: on a non-positive Cs for v, also drop the later LV entries
  /// lying on v's branch (ancestors/descendants of v).
  bool branch_pruning = true;
  /// The paper's Cs charges maintenance at the full from-base recompute
  /// cost Cm(v) = Ca(v) even when materialized descendants could be
  /// reused (its walkthrough rejects result4 on exactly that basis).
  /// Setting this discounts the maintenance term by the current frontier
  /// instead — a strictly better-informed gain (ablation Ext-C).
  bool reuse_aware_maintenance_gain = false;
  /// Walkthrough rule: skip v when all of its direct parents are already
  /// materialized (tmp1 in the paper's trace).
  bool skip_when_parents_materialized = true;
  /// Step 9 cleanup: drop v from M when D(v) ⊆ M — applied only when it
  /// does not worsen the total cost (the unguarded rule can regress).
  bool final_cleanup = true;
};

/// The paper's Figure 9 heuristic: order candidates by descending weight
/// w(v), admit v when its incremental gain Cs is positive, discounting
/// savings already captured by materialized descendants.
SelectionResult yang_heuristic(const MvppEvaluator& eval, YangOptions options = {});

/// Exact optimum by enumerating all 2^n subsets of operation nodes.
/// Throws PlanError when there are more than `max_candidates` candidates.
/// The mask range is priced on `threads` workers (0 = auto, 1 = serial)
/// with a deterministic lowest-cost/lowest-mask reduction, so the result
/// is bit-identical regardless of the thread count.
SelectionResult exhaustive_optimal(const MvppEvaluator& eval,
                                   std::size_t max_candidates = 24,
                                   std::size_t threads = 0);

/// Exact optimum by best-first branch and bound (in the spirit of the
/// authors' follow-up 0-1 integer-programming formulation). Sound lower
/// bound: the query side can never beat "everything still undecided is
/// materialized" and each already-included view can never be maintained
/// for less than under the most-reusable frontier — so subtrees whose
/// bound reaches the incumbent are pruned. Returns the same answer as
/// exhaustive_optimal while handling noticeably more candidates; throws
/// PlanError above `max_candidates`.
SelectionResult branch_and_bound_optimal(const MvppEvaluator& eval,
                                         std::size_t max_candidates = 40);

/// Exact-gain greedy: repeatedly add the candidate with the largest
/// positive decrease of total cost.
SelectionResult greedy_incremental(const MvppEvaluator& eval);

struct AnnealingOptions {
  std::uint64_t seed = 1;
  std::size_t iterations = 20000;
  double initial_temperature = 0.05;  // fraction of the empty-set cost
  double cooling = 0.999;
};

/// Simulated annealing over subsets (bit flips), seeded from the greedy
/// solution.
SelectionResult simulated_annealing(const MvppEvaluator& eval,
                                    AnnealingOptions options = {});

/// Local-search polish: starting from `start`, repeatedly apply the best
/// improving single add, drop, or swap of one view until a local optimum
/// is reached. Useful as a cheap post-pass on any heuristic's output
/// (e.g. yang + local_search closes most of the Ext-B gap).
SelectionResult local_search(const MvppEvaluator& eval, MaterializedSet start,
                             std::size_t max_rounds = 1000);

// ---- Space-budgeted selection -----------------------------------------
//
// In practice warehouses cap the storage spent on views. These variants
// keep Σ blocks(v) over M within `budget_blocks` — the classic constraint
// of the greedy view-selection literature (HRU), grafted onto the
// paper's cost model.

/// Blocks occupied by the set.
double total_view_blocks(const MvppGraph& graph, const MaterializedSet& m);

/// Greedy by gain density: repeatedly add the candidate with the best
/// (total-cost decrease) / blocks ratio that still fits. Stops when
/// nothing fitting improves the total.
SelectionResult budgeted_greedy(const MvppEvaluator& eval,
                                double budget_blocks);

/// Exact optimum under the budget by exhaustive enumeration (small n).
/// Parallel over `threads` workers like exhaustive_optimal (0 = auto,
/// 1 = serial); the reduction is deterministic.
SelectionResult budgeted_optimal(const MvppEvaluator& eval,
                                 double budget_blocks,
                                 std::size_t max_candidates = 22,
                                 std::size_t threads = 0);

}  // namespace mvd
