// The Multiple View Processing Plan (MVPP) — the paper's Section 3 DAG.
//
// Vertices are base relations (leaves, with update frequencies fu), the
// relational operations of the merged query plans (select / project /
// join), and query roots (with query frequencies fq). Arcs run from
// sources to the operations consuming them. Each operation node carries,
// after annotate():
//   - an equivalent plan tree from base relations (shared structurally
//     with its children's trees),
//   - estimated result size (rows/blocks),
//   - op_cost  — producing the result from direct inputs, and
//   - full_cost — the paper's Ca(v): producing it from base relations,
//     re-deriving every virtual intermediate beneath it.
//
// Nodes are deduplicated by structural signature on insertion, which is
// exactly the paper's common-subexpression merge (S(u) = S(v) and
// R(u) = R(v) => one vertex).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/algebra/aggregate.hpp"
#include "src/algebra/logical_plan.hpp"
#include "src/common/assert.hpp"
#include "src/cost/cost_model.hpp"

namespace mvd {

using NodeId = int;

enum class MvppNodeKind { kBase, kSelect, kProject, kJoin, kAggregate, kQuery };

std::string to_string(MvppNodeKind kind);

struct MvppNode {
  NodeId id = -1;
  MvppNodeKind kind = MvppNodeKind::kBase;
  /// "Product" for bases, "tmp3" for operations, the query name for roots.
  std::string name;

  std::vector<NodeId> children;  // S(v): direct sources
  std::vector<NodeId> parents;   // D(v): direct destinations

  // Kind-specific payloads.
  std::string relation;              // kBase
  ExprPtr predicate;                 // kSelect / kJoin
  std::vector<std::string> columns;  // kProject; group-by for kAggregate
  std::vector<AggSpec> aggregates;   // kAggregate
  double frequency = 0;              // fu for kBase, fq for kQuery

  /// Structural signature (see algebra/logical_plan.hpp); the dedup key.
  std::string sig;

  // Filled by annotate().
  PlanPtr expr;        // equivalent plan from base relations
  double rows = 0;
  double blocks = 0;
  double op_cost = 0;    // from direct inputs
  double full_cost = 0;  // Ca(v), from base relations

  bool is_operation() const {
    return kind != MvppNodeKind::kBase && kind != MvppNodeKind::kQuery;
  }

  /// One-line rendering ("tmp1: select[(Division.city = 'LA')]").
  std::string label() const;
};

class MvppGraph {
 public:
  // ---- Construction. All adders deduplicate: re-adding a node with an
  // existing signature returns the existing id. ----

  /// Base relation leaf; `update_frequency` is fu(v).
  NodeId add_base(const std::string& relation, const Schema& schema,
                  double update_frequency);

  NodeId add_select(NodeId child, const ExprPtr& predicate);
  NodeId add_project(NodeId child, const std::vector<std::string>& columns);
  NodeId add_join(NodeId left, NodeId right, const ExprPtr& predicate);

  /// Grouped aggregation over `child` (group_by may be empty for a global
  /// aggregate). Aliases must already be resolved (make_aggregate rules
  /// apply at annotate() time).
  NodeId add_aggregate(NodeId child, std::vector<std::string> group_by,
                       std::vector<AggSpec> aggregates);

  /// Query root over `child` (typically the query's final projection).
  /// Query roots are never deduplicated; names must be unique.
  NodeId add_query(const std::string& name, double frequency, NodeId child);

  // ---- Access ----

  std::size_t size() const { return nodes_.size(); }
  const MvppNode& node(NodeId id) const;
  const std::vector<MvppNode>& nodes() const { return nodes_; }

  std::vector<NodeId> base_ids() const;       // L
  std::vector<NodeId> query_ids() const;      // R
  /// Operation nodes (the materialization candidates), in topological
  /// order (children before parents — the insertion order guarantees it).
  std::vector<NodeId> operation_ids() const;

  /// All strict ancestors D*{v} (everything reachable following parents).
  std::set<NodeId> ancestors(NodeId id) const;
  /// All strict descendants S*{v}.
  std::set<NodeId> descendants(NodeId id) const;

  /// R ∩ D*{v}: the queries whose evaluation can use v (the paper's Ov).
  std::vector<NodeId> queries_using(NodeId id) const;
  /// L ∩ S*{v}: the base relations beneath v (the paper's Iv).
  std::vector<NodeId> bases_under(NodeId id) const;

  NodeId find_by_name(const std::string& name) const;  // -1 when absent

  /// Name an operation node explicitly (e.g. the paper's tmp1..tmp7,
  /// result1..result4) instead of the automatic tmpN naming. Throws
  /// PlanError on duplicates or non-operation nodes.
  void set_name(NodeId id, const std::string& name);

  /// What-if analysis: change fq of a query root or fu of a base leaf.
  /// Costs (Ca etc.) are frequency-independent, so no re-annotation is
  /// needed. Throws PlanError on operation nodes or negative values.
  void set_frequency(NodeId id, double frequency);

  // ---- Annotation & rendering ----

  /// Compute expr/rows/blocks/op_cost/full_cost for every node.
  /// Also assigns tmpN names to unnamed operation nodes in topological
  /// order. Must be called before cost evaluation.
  void annotate(const CostModel& cost_model);
  bool annotated() const { return annotated_; }

  /// Structural sanity: acyclic, consistent parent/child links, node
  /// arities, signature dedup, frequency placement. Delegates to the
  /// structure-phase mvlint rules (src/lint) so the invariants live in
  /// exactly one place; throws AssertionError listing the diagnostics on
  /// violation (these are internal invariants).
  void validate() const;

  /// Graphviz rendering with costs and frequencies.
  std::string to_dot() const;

  /// Indented multi-line text rendering (queries at top).
  std::string to_text() const;

 private:
  friend class MvppGraphMutator;

  NodeId add_node(MvppNode node);
  NodeId dedup(const std::string& sig) const;  // -1 when new

  std::vector<MvppNode> nodes_;
  std::map<std::string, NodeId> by_signature_;
  std::map<NodeId, Schema> base_schemas_;
  bool annotated_ = false;
};

/// Controlled mutable access to graph internals, bypassing the add_*
/// invariant-preserving API. Used by the lint mutation self-tests to
/// inject corruptions and by the serializer to overlay recorded
/// annotations. Never part of normal design flows.
class MvppGraphMutator {
 public:
  explicit MvppGraphMutator(MvppGraph& graph) : graph_(&graph) {}

  MvppNode& node(NodeId id) {
    MVD_ASSERT(id >= 0 && static_cast<std::size_t>(id) < graph_->nodes_.size());
    return graph_->nodes_[static_cast<std::size_t>(id)];
  }

  /// Force the annotated flag (field pokes keep it; overlays restore it
  /// after loading).
  void mark_annotated(bool value) { graph_->annotated_ = value; }

 private:
  MvppGraph* graph_;
};

}  // namespace mvd
