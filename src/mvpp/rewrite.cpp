#include "src/mvpp/rewrite.hpp"

#include "src/common/assert.hpp"

namespace mvd {

namespace {

PlanPtr node_plan(const MvppGraph& g, NodeId id, const MaterializedSet& m,
                  bool allow_stored_self) {
  const MvppNode& n = g.node(id);
  MVD_ASSERT_MSG(g.annotated(), "graph must be annotated");
  if (n.kind == MvppNodeKind::kBase) {
    return make_named_scan(n.name, n.expr->output_schema());
  }
  if (allow_stored_self && m.contains(id)) {
    return make_named_scan(n.name, n.expr->output_schema());
  }
  switch (n.kind) {
    case MvppNodeKind::kSelect:
      return make_select(node_plan(g, n.children[0], m, true), n.predicate);
    case MvppNodeKind::kProject:
      return make_project(node_plan(g, n.children[0], m, true), n.columns);
    case MvppNodeKind::kJoin:
      return make_join(node_plan(g, n.children[0], m, true),
                       node_plan(g, n.children[1], m, true), n.predicate);
    case MvppNodeKind::kAggregate:
      return make_aggregate(node_plan(g, n.children[0], m, true), n.columns,
                            n.aggregates);
    case MvppNodeKind::kQuery:
      return node_plan(g, n.children[0], m, true);
    default:
      MVD_ASSERT(false);
      return nullptr;
  }
}

}  // namespace

PlanPtr refresh_plan(const MvppGraph& graph, NodeId node,
                     const MaterializedSet& m) {
  return node_plan(graph, node, m, /*allow_stored_self=*/false);
}

PlanPtr answer_plan(const MvppGraph& graph, NodeId query,
                    const MaterializedSet& m) {
  const MvppNode& q = graph.node(query);
  MVD_ASSERT(q.kind == MvppNodeKind::kQuery);
  return node_plan(graph, q.children[0], m, /*allow_stored_self=*/true);
}

}  // namespace mvd
