// MVPP generation — the paper's Figure 4 algorithm.
//
// For each query we take its individual optimal plan (join order from the
// optimizer), conceptually push its selections and projections up so only
// the join pattern over base relations remains (step 2), and merge the
// plans one at a time into the growing MVPP: existing join subtrees whose
// base-relation sets and join predicates match a subset of the incoming
// query are reused wholesale; the remaining relations are joined following
// the query's own order (steps 4.3.1–4.3.3). Afterwards, selections are
// pushed back down to the leaves as per-relation disjunctions and
// projections as unions including join attributes (steps 5–6, the
// Figure 7 → Figure 8 rewrite), with query-specific residual selections
// applied on each query's private path whenever the pushed-down
// disjunction is weaker than the query's own condition.
//
// Because the merge result depends on the order in which plans are
// incorporated, the algorithm produces k MVPPs for k queries by rotating
// the fq·Ca-descending list (step 4.5); choose_best_mvpp() runs a
// selection algorithm on each and keeps the cheapest.
#pragma once

#include <functional>

#include "src/algebra/query_spec.hpp"
#include "src/mvpp/graph.hpp"
#include "src/mvpp/selection.hpp"
#include "src/optimizer/optimizer.hpp"

namespace mvd {

struct MvppBuildResult {
  MvppGraph graph;
  /// Query names in the order they were merged.
  std::vector<std::string> merge_order;
};

class MvppBuilder {
 public:
  explicit MvppBuilder(const Optimizer& optimizer);

  /// Merge `queries` in positions `order` (a permutation of indices into
  /// `queries`). The result is annotated against the optimizer's cost
  /// model.
  MvppBuildResult build(const std::vector<QuerySpec>& queries,
                        const std::vector<std::size_t>& order) const;

  /// The descending fq·Ca ordering of step 3 (indices into `queries`).
  std::vector<std::size_t> initial_order(
      const std::vector<QuerySpec>& queries) const;

  /// All k rotations of the initial order (the paper's k candidate MVPPs).
  /// Rotations are built on `threads` workers (0 = auto, 1 = serial);
  /// each rotation is an independent merge, so the results are identical
  /// to the serial order.
  std::vector<MvppBuildResult> build_all_rotations(
      const std::vector<QuerySpec>& queries, std::size_t threads = 0) const;

  const Optimizer& optimizer() const { return *optimizer_; }

 private:
  const Optimizer* optimizer_;
};

/// Which MVPP wins once views are selected on each.
struct MvppChoice {
  std::size_t index = 0;        // into the candidates vector
  SelectionResult selection;    // of the winning MVPP
};

using SelectionAlgorithm =
    std::function<SelectionResult(const MvppEvaluator&)>;

/// Run `algorithm` (default: the Figure 9 heuristic) over every candidate
/// and return the index/selection of the lowest total cost.
MvppChoice choose_best_mvpp(
    const std::vector<MvppBuildResult>& candidates,
    MaintenancePolicy policy = {},
    const SelectionAlgorithm& algorithm = {});

}  // namespace mvd
