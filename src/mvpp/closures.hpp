// Precomputed transitive closures of an MvppGraph.
//
// graph.cpp's ancestors()/descendants() re-walk the DAG into a fresh
// std::set on every call, and queries_using()/bases_under() each pay a
// full closure walk plus a filtered scan. Every selection algorithm asks
// these questions thousands of times for the same immutable structure, so
// this pass computes them once, in one topological sweep each direction:
//   descendants[v] = ∪_{c ∈ children(v)} ({c} ∪ descendants[c])
//   ancestors[v]   = ∪_{p ∈ parents(v)}  ({p} ∪ ancestors[p])
// stored as NodeBitsets (V²/64 bits total), with queries_using (Ov) and
// bases_under (Iv) additionally flattened to ascending id vectors in
// exactly the order the legacy accessors produce — cost sums built from
// them are bit-identical to sums built from the std::set walks.
//
// Closures are structural only: node frequencies are read live from the
// graph, so the set_frequency() what-if API keeps working against a
// cached closure.
#pragma once

#include <vector>

#include "src/mvpp/graph.hpp"
#include "src/mvpp/node_bitset.hpp"

namespace mvd {

class GraphClosures {
 public:
  explicit GraphClosures(const MvppGraph& graph);

  std::size_t size() const { return ancestors_.size(); }

  /// Strict ancestors D*{v} as a bitset.
  const NodeBitset& ancestors(NodeId v) const { return at(ancestors_, v); }
  /// Strict descendants S*{v} as a bitset.
  const NodeBitset& descendants(NodeId v) const { return at(descendants_, v); }

  /// R ∩ D*{v} (the paper's Ov), ascending.
  const std::vector<NodeId>& queries_using(NodeId v) const {
    return at(queries_using_, v);
  }
  /// L ∩ S*{v} (the paper's Iv), ascending.
  const std::vector<NodeId>& bases_under(NodeId v) const {
    return at(bases_under_, v);
  }

  const std::vector<NodeId>& query_ids() const { return query_ids_; }
  const std::vector<NodeId>& base_ids() const { return base_ids_; }
  const std::vector<NodeId>& operation_ids() const { return operation_ids_; }

 private:
  template <typename T>
  static const T& at(const std::vector<T>& v, NodeId id) {
    MVD_ASSERT(id >= 0 && static_cast<std::size_t>(id) < v.size());
    return v[static_cast<std::size_t>(id)];
  }

  std::vector<NodeBitset> ancestors_;
  std::vector<NodeBitset> descendants_;
  std::vector<std::vector<NodeId>> queries_using_;
  std::vector<std::vector<NodeId>> bases_under_;
  std::vector<NodeId> query_ids_;
  std::vector<NodeId> base_ids_;
  std::vector<NodeId> operation_ids_;
};

}  // namespace mvd
