#include "src/mvpp/serialize.hpp"

#include "src/common/assert.hpp"

namespace mvd {

Json to_json(const MvppGraph& graph) {
  Json nodes = Json::array();
  for (const MvppNode& n : graph.nodes()) {
    Json j = Json::object();
    j.set("id", Json::number(static_cast<double>(n.id)));
    j.set("kind", Json::string(to_string(n.kind)));
    j.set("name", Json::string(n.name));
    switch (n.kind) {
      case MvppNodeKind::kBase:
        j.set("relation", Json::string(n.relation));
        j.set("update_frequency", Json::number(n.frequency));
        break;
      case MvppNodeKind::kSelect:
      case MvppNodeKind::kJoin:
        j.set("predicate", Json::string(n.predicate->to_string()));
        break;
      case MvppNodeKind::kProject: {
        Json cols = Json::array();
        for (const std::string& c : n.columns) cols.push_back(Json::string(c));
        j.set("columns", std::move(cols));
        break;
      }
      case MvppNodeKind::kAggregate: {
        Json groups = Json::array();
        for (const std::string& c : n.columns) {
          groups.push_back(Json::string(c));
        }
        j.set("group_by", std::move(groups));
        Json aggs = Json::array();
        for (const AggSpec& a : n.aggregates) {
          aggs.push_back(Json::string(a.to_string()));
        }
        j.set("aggregates", std::move(aggs));
        break;
      }
      case MvppNodeKind::kQuery:
        j.set("query_frequency", Json::number(n.frequency));
        break;
    }
    Json children = Json::array();
    for (NodeId c : n.children) {
      children.push_back(Json::number(static_cast<double>(c)));
    }
    j.set("children", std::move(children));
    if (graph.annotated() && n.kind != MvppNodeKind::kQuery) {
      j.set("rows", Json::number(n.rows));
      j.set("blocks", Json::number(n.blocks));
      if (n.is_operation()) {
        j.set("op_cost", Json::number(n.op_cost));
        j.set("full_cost", Json::number(n.full_cost));
      }
    }
    nodes.push_back(std::move(j));
  }
  Json out = Json::object();
  out.set("annotated", Json::boolean(graph.annotated()));
  out.set("nodes", std::move(nodes));
  return out;
}

Json to_json(const MvppGraph& graph, const SelectionResult& selection) {
  Json out = Json::object();
  out.set("algorithm", Json::string(selection.algorithm));
  Json views = Json::array();
  for (NodeId v : selection.materialized) {
    views.push_back(Json::string(graph.node(v).name));
  }
  out.set("materialized", std::move(views));
  Json costs = Json::object();
  costs.set("query_processing", Json::number(selection.costs.query_processing));
  costs.set("maintenance", Json::number(selection.costs.maintenance));
  costs.set("total", Json::number(selection.costs.total()));
  out.set("costs", std::move(costs));
  Json trace = Json::array();
  for (const std::string& line : selection.trace) {
    trace.push_back(Json::string(line));
  }
  out.set("trace", std::move(trace));
  return out;
}

Json design_report_json(const MvppEvaluator& eval,
                        const SelectionResult& selection) {
  const MvppGraph& g = eval.graph();
  Json out = Json::object();
  out.set("selection", to_json(g, selection));

  Json queries = Json::array();
  for (NodeId q : g.query_ids()) {
    Json j = Json::object();
    j.set("name", Json::string(g.node(q).name));
    j.set("frequency", Json::number(g.node(q).frequency));
    j.set("answer_cost", Json::number(eval.answer_cost(q, selection.materialized)));
    j.set("answer_cost_all_virtual", Json::number(eval.answer_cost(q, {})));
    queries.push_back(std::move(j));
  }
  out.set("queries", std::move(queries));

  Json views = Json::array();
  for (NodeId v : selection.materialized) {
    Json j = Json::object();
    j.set("name", Json::string(g.node(v).name));
    j.set("blocks", Json::number(g.node(v).blocks));
    j.set("maintenance_cost",
          Json::number(eval.maintenance_cost(v, selection.materialized)));
    Json consumers = Json::array();
    for (NodeId q : g.queries_using(v)) {
      consumers.push_back(Json::string(g.node(q).name));
    }
    j.set("serves", std::move(consumers));
    views.push_back(std::move(j));
  }
  out.set("views", std::move(views));
  out.set("graph", to_json(g));
  return out;
}

}  // namespace mvd
