#include "src/mvpp/serialize.hpp"

#include <charconv>
#include <cstdio>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"
#include "src/sql/parser.hpp"
#include "src/storage/value.hpp"

namespace mvd {

namespace {

std::string value_to_sql(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
      return std::to_string(v.as_int64());
    case ValueType::kDouble: {
      char buf[32];
      const auto [end, ec] = std::to_chars(buf, buf + sizeof buf,
                                           v.as_double());
      MVD_ASSERT(ec == std::errc());
      return std::string(buf, end);
    }
    case ValueType::kString: {
      std::string out = "'";
      for (char c : v.as_string()) {
        out += c;
        if (c == '\'') out += '\'';  // SQL doubling escape
      }
      out += '\'';
      return out;
    }
    case ValueType::kBool:
      return v.as_bool() ? "TRUE" : "FALSE";
    case ValueType::kDate: {
      int year = 0, month = 0, day = 0;
      Value::civil_from_days(v.as_int64(), year, month, day);
      char buf[32];
      std::snprintf(buf, sizeof buf, "DATE '%04d-%02d-%02d'", year, month,
                    day);
      return buf;
    }
  }
  MVD_ASSERT(false);
  return {};
}

}  // namespace

std::string expr_to_sql(const ExprPtr& expr) {
  MVD_ASSERT(expr != nullptr);
  switch (expr->kind()) {
    case ExprKind::kColumn:
      return static_cast<const ColumnExpr&>(*expr).name();
    case ExprKind::kLiteral:
      return value_to_sql(static_cast<const LiteralExpr&>(*expr).value());
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(*expr);
      return "(" + expr_to_sql(cmp.lhs()) + " " + to_string(cmp.op()) + " " +
             expr_to_sql(cmp.rhs()) + ")";
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const auto& b = static_cast<const BoolExpr&>(*expr);
      const char* glue = expr->kind() == ExprKind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (std::size_t i = 0; i < b.operands().size(); ++i) {
        if (i != 0) out += glue;
        out += expr_to_sql(b.operands()[i]);
      }
      out += ")";
      return out;
    }
    case ExprKind::kNot:
      return "(NOT " +
             expr_to_sql(static_cast<const NotExpr&>(*expr).operand()) + ")";
  }
  MVD_ASSERT(false);
  return {};
}

Json to_json(const MvppGraph& graph) {
  Json nodes = Json::array();
  for (const MvppNode& n : graph.nodes()) {
    Json j = Json::object();
    j.set("id", Json::number(static_cast<double>(n.id)));
    j.set("kind", Json::string(to_string(n.kind)));
    j.set("name", Json::string(n.name));
    switch (n.kind) {
      case MvppNodeKind::kBase:
        j.set("relation", Json::string(n.relation));
        j.set("update_frequency", Json::number(n.frequency));
        break;
      case MvppNodeKind::kSelect:
      case MvppNodeKind::kJoin:
        j.set("predicate", Json::string(n.predicate->to_string()));
        j.set("predicate_sql", Json::string(expr_to_sql(n.predicate)));
        break;
      case MvppNodeKind::kProject: {
        Json cols = Json::array();
        for (const std::string& c : n.columns) cols.push_back(Json::string(c));
        j.set("columns", std::move(cols));
        break;
      }
      case MvppNodeKind::kAggregate: {
        Json groups = Json::array();
        for (const std::string& c : n.columns) {
          groups.push_back(Json::string(c));
        }
        j.set("group_by", std::move(groups));
        Json aggs = Json::array();
        for (const AggSpec& a : n.aggregates) {
          aggs.push_back(Json::string(a.to_string()));
        }
        j.set("aggregates", std::move(aggs));
        Json specs = Json::array();
        for (const AggSpec& a : n.aggregates) {
          Json spec = Json::object();
          spec.set("fn", Json::string(to_string(a.fn)));
          spec.set("column", Json::string(a.column));
          spec.set("alias", Json::string(a.alias));
          specs.push_back(std::move(spec));
        }
        j.set("aggregate_specs", std::move(specs));
        break;
      }
      case MvppNodeKind::kQuery:
        j.set("query_frequency", Json::number(n.frequency));
        break;
    }
    Json children = Json::array();
    for (NodeId c : n.children) {
      children.push_back(Json::number(static_cast<double>(c)));
    }
    j.set("children", std::move(children));
    if (graph.annotated() && n.kind != MvppNodeKind::kQuery) {
      j.set("rows", Json::number(n.rows));
      j.set("blocks", Json::number(n.blocks));
      if (n.is_operation()) {
        j.set("op_cost", Json::number(n.op_cost));
        j.set("full_cost", Json::number(n.full_cost));
      }
    }
    nodes.push_back(std::move(j));
  }
  Json out = Json::object();
  out.set("annotated", Json::boolean(graph.annotated()));
  out.set("nodes", std::move(nodes));
  return out;
}

Json to_json(const MvppGraph& graph, const SelectionResult& selection) {
  Json out = Json::object();
  out.set("algorithm", Json::string(selection.algorithm));
  Json views = Json::array();
  for (NodeId v : selection.materialized) {
    views.push_back(Json::string(graph.node(v).name));
  }
  out.set("materialized", std::move(views));
  Json costs = Json::object();
  costs.set("query_processing", Json::number(selection.costs.query_processing));
  costs.set("maintenance", Json::number(selection.costs.maintenance));
  costs.set("total", Json::number(selection.costs.total()));
  out.set("costs", std::move(costs));
  Json trace = Json::array();
  for (const std::string& line : selection.trace) {
    trace.push_back(Json::string(line));
  }
  out.set("trace", std::move(trace));
  return out;
}

Json design_report_json(const MvppEvaluator& eval,
                        const SelectionResult& selection) {
  const MvppGraph& g = eval.graph();
  Json out = Json::object();
  out.set("selection", to_json(g, selection));

  Json queries = Json::array();
  for (NodeId q : g.query_ids()) {
    Json j = Json::object();
    j.set("name", Json::string(g.node(q).name));
    j.set("frequency", Json::number(g.node(q).frequency));
    j.set("answer_cost", Json::number(eval.answer_cost(q, selection.materialized)));
    j.set("answer_cost_all_virtual", Json::number(eval.answer_cost(q, {})));
    queries.push_back(std::move(j));
  }
  out.set("queries", std::move(queries));

  Json views = Json::array();
  for (NodeId v : selection.materialized) {
    Json j = Json::object();
    j.set("name", Json::string(g.node(v).name));
    j.set("blocks", Json::number(g.node(v).blocks));
    j.set("maintenance_cost",
          Json::number(eval.maintenance_cost(v, selection.materialized)));
    Json consumers = Json::array();
    for (NodeId q : g.queries_using(v)) {
      consumers.push_back(Json::string(g.node(q).name));
    }
    j.set("serves", std::move(consumers));
    views.push_back(std::move(j));
  }
  out.set("views", std::move(views));
  out.set("graph", to_json(g));
  return out;
}

namespace {

MvppNodeKind kind_from_string(const std::string& text) {
  for (MvppNodeKind k :
       {MvppNodeKind::kBase, MvppNodeKind::kSelect, MvppNodeKind::kProject,
        MvppNodeKind::kJoin, MvppNodeKind::kAggregate, MvppNodeKind::kQuery}) {
    if (to_string(k) == text) return k;
  }
  throw ParseError("unknown MVPP node kind '" + text + "'");
}

AggFn agg_fn_from_string(const std::string& text) {
  for (AggFn fn : {AggFn::kCount, AggFn::kSum, AggFn::kMin, AggFn::kMax,
                   AggFn::kAvg, AggFn::kSumInt}) {
    if (to_string(fn) == text) return fn;
  }
  throw ParseError("unknown aggregate function '" + text + "'");
}

const Json& require(const Json& node, const std::string& key) {
  if (node.kind() != Json::Kind::kObject || !node.contains(key)) {
    throw ParseError("MVPP node record is missing field '" + key + "'");
  }
  return node.at(key);
}

std::vector<std::string> string_list(const Json& arr) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < arr.size(); ++i) {
    out.push_back(arr.at(i).as_string());
  }
  return out;
}

}  // namespace

MvppGraph mvpp_from_json(const Json& doc, const Catalog& catalog,
                         const CostModel* cost_model) {
  if (doc.kind() != Json::Kind::kObject || !doc.contains("nodes")) {
    throw ParseError("not an MVPP document (missing \"nodes\")");
  }
  const Json& nodes = doc.at("nodes");
  MvppGraph g;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Json& j = nodes.at(i);
    const MvppNodeKind kind = kind_from_string(require(j, "kind").as_string());
    const NodeId recorded = static_cast<NodeId>(require(j, "id").as_number());
    const Json& children = require(j, "children");
    const auto child = [&](std::size_t slot) {
      if (slot >= children.size()) {
        throw ParseError(str_cat("node ", recorded, " needs child #", slot));
      }
      return static_cast<NodeId>(children.at(slot).as_number());
    };
    NodeId id = -1;
    switch (kind) {
      case MvppNodeKind::kBase: {
        const std::string relation = require(j, "relation").as_string();
        id = g.add_base(relation, catalog.schema(relation),
                        require(j, "update_frequency").as_number());
        break;
      }
      case MvppNodeKind::kSelect:
        id = g.add_select(child(0),
                          parse_predicate(require(j, "predicate_sql")
                                              .as_string()));
        break;
      case MvppNodeKind::kJoin:
        id = g.add_join(child(0), child(1),
                        parse_predicate(require(j, "predicate_sql")
                                            .as_string()));
        break;
      case MvppNodeKind::kProject:
        id = g.add_project(child(0), string_list(require(j, "columns")));
        break;
      case MvppNodeKind::kAggregate: {
        const Json& specs = require(j, "aggregate_specs");
        std::vector<AggSpec> aggs;
        for (std::size_t s = 0; s < specs.size(); ++s) {
          const Json& spec = specs.at(s);
          aggs.push_back({agg_fn_from_string(require(spec, "fn").as_string()),
                          require(spec, "column").as_string(),
                          require(spec, "alias").as_string()});
        }
        id = g.add_aggregate(child(0), string_list(require(j, "group_by")),
                             std::move(aggs));
        break;
      }
      case MvppNodeKind::kQuery:
        id = g.add_query(require(j, "name").as_string(),
                         require(j, "query_frequency").as_number(), child(0));
        break;
    }
    if (id != recorded) {
      throw ParseError(str_cat("node ids diverge on replay: record ", recorded,
                               " became ", id,
                               " (duplicate structure in the document?)"));
    }
    const std::string& name = require(j, "name").as_string();
    if (g.node(id).is_operation() && !name.empty()) g.set_name(id, name);
  }

  const bool annotated =
      doc.contains("annotated") && doc.at("annotated").as_bool();
  if (annotated && cost_model != nullptr) {
    g.annotate(*cost_model);
  } else if (annotated) {
    // Overlay the recorded annotation. Plan exprs are not rebuilt, so
    // expr-dependent lint rules skip; the numeric invariants (and cost
    // evaluation) see exactly the saved values. Query roots inherit
    // their child's figures the same way annotate() computes them —
    // children precede parents, so one forward pass suffices.
    MvppGraphMutator mut(g);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Json& j = nodes.at(i);
      MvppNode& n = mut.node(static_cast<NodeId>(i));
      if (n.kind == MvppNodeKind::kQuery) {
        const MvppNode& c = g.node(n.children[0]);
        n.rows = c.rows;
        n.blocks = c.blocks;
        n.full_cost = c.full_cost;
        continue;
      }
      n.rows = require(j, "rows").as_number();
      n.blocks = require(j, "blocks").as_number();
      if (n.is_operation()) {
        n.op_cost = require(j, "op_cost").as_number();
        n.full_cost = require(j, "full_cost").as_number();
      }
    }
    mut.mark_annotated(true);
  }
  g.validate();
  return g;
}

}  // namespace mvd
