// Cost evaluation of an MVPP under a chosen materialized set M
// (Section 4.1 of the paper).
//
//   C_total(M) = Σ_i fq(qi) · C(M -> qi)  +  Σ_j fu-factor(vj) · C(L -> vj)
//
// Query side: answering query q costs a scan of its result when the result
// node is in M; otherwise the cost of producing it, where every virtual
// intermediate is re-derived on the fly and every materialized descendant
// is read at its stored block count.
//
// Maintenance side: each v in M is recomputed from its nearest stored
// frontier (materialized descendants are *reused* — this is the only
// reading of the paper's Table 2 whose rows are mutually consistent, and
// it can be disabled for ablation). The recompute is charged once per
// update batch (max fu over the base relations beneath v) or once per
// individual base update (the literal Σ fu(bj) of the formula), selected
// by MaintenancePolicy::mode.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/mvpp/closures.hpp"
#include "src/mvpp/graph.hpp"

namespace mvd {

using MaterializedSet = std::set<NodeId>;

struct MaintenancePolicy {
  enum class Mode {
    /// All updates to the base relations beneath a view within one period
    /// are applied with a single recompute: factor = max fu (paper's
    /// worked example; all fu = 1 there).
    kBatchRecompute,
    /// One recompute per base-relation update: factor = Σ fu (the literal
    /// Section 4.1 formula).
    kPerUpdate,
  };
  Mode mode = Mode::kBatchRecompute;

  /// Reuse materialized descendants when recomputing a view. Disable to
  /// charge the full from-base-relations cost Ca(v) instead.
  bool reuse_materialized = true;
};

struct MvppCosts {
  double query_processing = 0;
  double maintenance = 0;
  double total() const { return query_processing + maintenance; }
};

/// Index modeling for stored views — the paper's §3.2 argument that "if an
/// intermediate result is materialized, we can establish a proper index on
/// it afterwards", guaranteeing a performance gain. When enabled, an
/// equality selection reading a stored view fetches only its matching
/// blocks, and a join whose inner side is a stored view runs as an
/// index-nested-loop (outer scan + one probe per outer tuple) when that
/// beats the block nested loop. Base relations stay index-less (they
/// belong to the member databases).
struct IndexPolicy {
  bool enabled = false;
  /// Blocks touched per index probe (root-to-leaf plus the record).
  double probe_cost_blocks = 1.2;
};

class MvppEvaluator {
 public:
  explicit MvppEvaluator(const MvppGraph& graph, MaintenancePolicy policy = {},
                         IndexPolicy index = {});
  virtual ~MvppEvaluator() = default;

  const MvppGraph& graph() const { return *graph_; }
  const MaintenancePolicy& policy() const { return policy_; }
  const IndexPolicy& index_policy() const { return index_; }

  /// Precomputed structural closures of the graph (ancestors/descendants
  /// bitsets, Ov and Iv lists), built once at construction and shared by
  /// the selection algorithms and the fast evaluation path.
  const GraphClosures& closures() const { return *closures_; }

  /// Cost of producing v's result given M, *not* counting v itself as
  /// stored: materialized or base children are read at their block
  /// counts (charged in the consuming op_cost), virtual children are
  /// recursively re-derived. Virtual so extended cost models (e.g. the
  /// communication-aware distributed evaluator) plug into the selection
  /// algorithms unchanged.
  virtual double produce_cost(NodeId v, const MaterializedSet& m) const;

  /// One node's operator cost given M (index-aware when enabled);
  /// excludes child production.
  double op_contribution(const MvppNode& n, const MaterializedSet& m) const;

  /// Cost of answering `query` (a kQuery root): a scan of its result node
  /// when that node is materialized, else produce_cost of it.
  virtual double answer_cost(NodeId query, const MaterializedSet& m) const;

  /// Σ fq(q) · answer_cost(q).
  double query_processing_cost(const MaterializedSet& m) const;

  /// Update factor of v per the policy mode (max or Σ of fu over the base
  /// relations beneath v).
  double update_factor(NodeId v) const;

  /// Maintenance cost of one view v (assumed in M): update_factor ·
  /// recompute cost (frontier-reusing or full, per the policy).
  virtual double maintenance_cost(NodeId v, const MaterializedSet& m) const;

  /// Σ over v in M.
  double total_maintenance_cost(const MaterializedSet& m) const;

  MvppCosts evaluate(const MaterializedSet& m) const;
  double total_cost(const MaterializedSet& m) const;

  /// The paper's node weight
  ///   w(v) = Σ_{q in Ov} fq(q)·Ca(v)  -  fu-factor(v)·Ca(v).
  double weight(NodeId v) const;

  /// Throws PlanError if m contains ids that are not operation nodes.
  void check_materializable(const MaterializedSet& m) const;

 private:
  const MvppGraph* graph_;
  MaintenancePolicy policy_;
  IndexPolicy index_;
  std::shared_ptr<const GraphClosures> closures_;
};

/// Render a materialized set as "{tmp2, tmp4}" using node names.
std::string to_string(const MvppGraph& graph, const MaterializedSet& m);

}  // namespace mvd
