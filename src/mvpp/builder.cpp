#include "src/mvpp/builder.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/common/strings.hpp"
#include "src/lint/lint.hpp"
#include "src/obs/trace.hpp"

namespace mvd {

MvppBuilder::MvppBuilder(const Optimizer& optimizer)
    : optimizer_(&optimizer) {}

namespace {

// A piece of a join pattern: either a bare base relation or a previously
// created pattern node.
struct PatternRef {
  int pattern = -1;   // index into patterns when >= 0
  std::string base;   // relation name when pattern < 0
  bool is_base() const { return pattern < 0; }
};

// A pure join-pattern node over base relations (selections/projections
// conceptually pushed up during the merge phase).
struct Pattern {
  PatternRef left;
  PatternRef right;
  std::vector<JoinPredicate> preds_here;   // conjuncts applied at this node
  std::set<std::string> bases;             // base relations underneath
  std::set<std::string> internal_preds;    // canonical conjuncts underneath
};

std::string pattern_key(const std::set<std::string>& bases,
                        const std::set<std::string>& preds) {
  std::string key;
  for (const std::string& b : bases) key += b + ",";
  key += "|";
  for (const std::string& p : preds) key += p + "&";
  return key;
}

class MergeState {
 public:
  // Integrate one query's join pattern; returns the query's top piece.
  PatternRef integrate(const QuerySpec& spec,
                       const std::vector<std::string>& join_order) {
    const std::set<std::string> rels(spec.relations().begin(),
                                     spec.relations().end());
    std::set<std::string> qpreds;
    for (const JoinPredicate& j : spec.joins()) qpreds.insert(j.canonical());

    // 4.3.1: find reusable existing subtrees — base sets contained in the
    // query whose internal predicates agree exactly with the query's
    // predicates over those bases.
    std::vector<int> usable;
    for (int p = 0; p < static_cast<int>(patterns_.size()); ++p) {
      const Pattern& pat = patterns_[static_cast<std::size_t>(p)];
      if (!std::includes(rels.begin(), rels.end(), pat.bases.begin(),
                         pat.bases.end())) {
        continue;
      }
      if (pat.internal_preds !=
          preds_within(spec, qpreds, pat.bases)) {
        continue;
      }
      usable.push_back(p);
    }
    // Greedy largest-first, non-overlapping.
    std::sort(usable.begin(), usable.end(), [&](int a, int b) {
      const std::size_t sa = patterns_[static_cast<std::size_t>(a)].bases.size();
      const std::size_t sb = patterns_[static_cast<std::size_t>(b)].bases.size();
      if (sa != sb) return sa > sb;
      return a < b;
    });
    std::set<std::string> covered;
    std::vector<PatternRef> pieces;
    for (int p : usable) {
      const Pattern& pat = patterns_[static_cast<std::size_t>(p)];
      const bool overlaps = std::any_of(
          pat.bases.begin(), pat.bases.end(),
          [&](const std::string& b) { return covered.contains(b); });
      if (overlaps) continue;
      covered.insert(pat.bases.begin(), pat.bases.end());
      pieces.push_back(PatternRef{p, {}});
    }
    for (const std::string& r : spec.relations()) {
      if (!covered.contains(r)) pieces.push_back(PatternRef{-1, r});
    }

    // 4.3.2: combine the pieces following the query's own join order —
    // repeatedly attach the piece containing the earliest not-yet-placed
    // relation of `join_order`.
    auto piece_bases = [&](const PatternRef& ref) -> std::set<std::string> {
      if (ref.is_base()) return {ref.base};
      return patterns_[static_cast<std::size_t>(ref.pattern)].bases;
    };
    auto next_piece = [&](const std::set<std::string>& placed) -> int {
      for (const std::string& r : join_order) {
        if (placed.contains(r)) continue;
        for (std::size_t i = 0; i < pieces.size(); ++i) {
          if (piece_bases(pieces[i]).contains(r)) return static_cast<int>(i);
        }
      }
      return -1;
    };

    std::set<std::string> placed;
    const int first = next_piece(placed);
    MVD_ASSERT(first >= 0);
    PatternRef current = pieces[static_cast<std::size_t>(first)];
    pieces.erase(pieces.begin() + first);
    auto cb = piece_bases(current);
    placed.insert(cb.begin(), cb.end());

    while (!pieces.empty()) {
      const int idx = next_piece(placed);
      MVD_ASSERT(idx >= 0);
      PatternRef next = pieces[static_cast<std::size_t>(idx)];
      pieces.erase(pieces.begin() + idx);
      const std::set<std::string> nb = piece_bases(next);

      // Join conjuncts of the query linking the two sides.
      std::vector<JoinPredicate> linking;
      for (const JoinPredicate& j : spec.joins()) {
        const std::string lr = j.left_relation();
        const std::string rr = j.right_relation();
        if ((placed.contains(lr) && nb.contains(rr)) ||
            (placed.contains(rr) && nb.contains(lr))) {
          linking.push_back(j);
        }
      }
      current = make_pattern(current, next, std::move(linking));
      placed.insert(nb.begin(), nb.end());
    }
    return current;
  }

  const std::vector<Pattern>& patterns() const { return patterns_; }

 private:
  // Canonical query join conjuncts with both sides inside `bases`.
  static std::set<std::string> preds_within(
      const QuerySpec& spec, const std::set<std::string>& qpreds,
      const std::set<std::string>& bases) {
    (void)qpreds;
    std::set<std::string> out;
    for (const JoinPredicate& j : spec.joins()) {
      if (bases.contains(j.left_relation()) &&
          bases.contains(j.right_relation())) {
        out.insert(j.canonical());
      }
    }
    return out;
  }

  PatternRef make_pattern(PatternRef left, PatternRef right,
                          std::vector<JoinPredicate> preds) {
    Pattern pat;
    pat.left = left;
    pat.right = right;
    pat.preds_here = std::move(preds);
    auto absorb = [&](const PatternRef& ref) {
      if (ref.is_base()) {
        pat.bases.insert(ref.base);
      } else {
        const Pattern& child = patterns_[static_cast<std::size_t>(ref.pattern)];
        pat.bases.insert(child.bases.begin(), child.bases.end());
        pat.internal_preds.insert(child.internal_preds.begin(),
                                  child.internal_preds.end());
      }
    };
    absorb(left);
    absorb(right);
    for (const JoinPredicate& j : pat.preds_here) {
      pat.internal_preds.insert(j.canonical());
    }

    const std::string key = pattern_key(pat.bases, pat.internal_preds);
    if (auto it = index_.find(key); it != index_.end()) {
      return PatternRef{it->second, {}};
    }
    patterns_.push_back(std::move(pat));
    const int id = static_cast<int>(patterns_.size()) - 1;
    index_.emplace(key, id);
    return PatternRef{id, {}};
  }

  std::vector<Pattern> patterns_;
  std::map<std::string, int> index_;
};

// Decide, per base relation, the shared pushed-down selection and which
// queries need residual conditions above the shared joins (steps 5–6).
struct LeafPlan {
  ExprPtr shared_select;                       // nullptr: no shared select
  std::map<std::string, ExprPtr> residuals;    // query name -> residual
  std::vector<std::string> columns;            // pushed-down projection
  bool project = false;                        // emit the projection node?
};

LeafPlan plan_leaf(const std::string& relation,
                   const std::vector<const QuerySpec*>& users,
                   const Schema& scan_schema) {
  LeafPlan plan;

  // Per-query selection conjunction on this relation (normalized).
  std::map<std::string, ExprPtr> conditions;  // query name -> conj or null
  bool all_have_condition = true;
  std::vector<ExprPtr> distinct_terms;
  for (const QuerySpec* q : users) {
    ExprPtr c = conj(q->selections_on(relation));
    if (c == nullptr) {
      all_have_condition = false;
    } else {
      c = normalize(c);
      const bool seen = std::any_of(
          distinct_terms.begin(), distinct_terms.end(),
          [&](const ExprPtr& t) { return t->to_string() == c->to_string(); });
      if (!seen) distinct_terms.push_back(c);
    }
    conditions[q->name()] = c;
  }

  if (all_have_condition && !distinct_terms.empty()) {
    plan.shared_select = distinct_terms.size() == 1
                             ? distinct_terms.front()
                             : normalize(disj(distinct_terms));
  }
  // Residual: the query's own condition when the shared node is weaker.
  for (const QuerySpec* q : users) {
    const ExprPtr& own = conditions[q->name()];
    if (own == nullptr) continue;
    const bool exact = plan.shared_select != nullptr &&
                       plan.shared_select->to_string() == own->to_string();
    if (!exact) plan.residuals[q->name()] = own;
  }

  // Pushed-down projection: union over queries of the columns each needs
  // above the leaf — output columns, join columns, columns of selections
  // still applied above (residuals and multi-relation selections).
  std::set<std::string> needed;
  auto add_on_relation = [&](const std::string& qualified) {
    if (qualified.rfind(relation + ".", 0) == 0) needed.insert(qualified);
  };
  for (const QuerySpec* q : users) {
    for (const std::string& c : q->projection()) add_on_relation(c);
    for (const JoinPredicate& j : q->joins()) {
      add_on_relation(j.left_column);
      add_on_relation(j.right_column);
    }
    for (const ExprPtr& s : q->multi_relation_selections()) {
      for (const std::string& c : columns_of(s)) add_on_relation(c);
    }
    if (auto it = plan.residuals.find(q->name()); it != plan.residuals.end()) {
      for (const std::string& c : columns_of(it->second)) add_on_relation(c);
    }
  }
  for (const Attribute& a : scan_schema.attributes()) {
    if (needed.contains(a.qualified())) plan.columns.push_back(a.qualified());
  }
  plan.project =
      !plan.columns.empty() && plan.columns.size() < scan_schema.size();
  return plan;
}

}  // namespace

std::vector<std::size_t> MvppBuilder::initial_order(
    const std::vector<QuerySpec>& queries) const {
  std::vector<double> score(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const PlanPtr plan = optimizer_->optimize(queries[i]);
    score[i] = queries[i].frequency() *
               optimizer_->cost_model().full_cost(plan);
  }
  std::vector<std::size_t> order(queries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return a < b;
  });
  return order;
}

MvppBuildResult MvppBuilder::build(const std::vector<QuerySpec>& queries,
                                   const std::vector<std::size_t>& order) const {
  if (queries.empty()) throw PlanError("cannot build an MVPP with no queries");
  if (order.size() != queries.size()) {
    throw PlanError("merge order must be a permutation of the query indices");
  }
  {
    std::set<std::size_t> seen(order.begin(), order.end());
    if (seen.size() != order.size() || *seen.rbegin() != order.size() - 1) {
      throw PlanError("merge order must be a permutation of the query indices");
    }
  }
  TraceSpan build_span("mvpp", "build");

  const Catalog& catalog = optimizer_->cost_model().catalog();

  // Phase 1: merge join patterns in the requested order.
  MergeState merge;
  std::map<std::string, PatternRef> query_top;  // query name -> top piece
  MvppBuildResult result;
  for (std::size_t idx : order) {
    const QuerySpec& q = queries[idx];
    const std::vector<std::string> join_order =
        optimizer_->optimal_join_order(q);
    query_top[q.name()] = merge.integrate(q, join_order);
    result.merge_order.push_back(q.name());
  }

  // Phase 2: per-leaf pushdown decisions.
  std::map<std::string, std::vector<const QuerySpec*>> users_of;
  for (const QuerySpec& q : queries) {
    for (const std::string& r : q.relations()) users_of[r].push_back(&q);
  }
  std::map<std::string, LeafPlan> leaf_plans;
  std::map<std::string, NodeId> leaf_unit;  // relation -> unit top node
  MvppGraph& g = result.graph;
  for (const auto& [relation, users] : users_of) {
    const Schema schema = make_scan(catalog, relation)->output_schema();
    LeafPlan plan = plan_leaf(relation, users, schema);
    NodeId unit =
        g.add_base(relation, schema, catalog.update_frequency(relation));
    if (plan.shared_select != nullptr) {
      unit = g.add_select(unit, plan.shared_select);
    }
    if (plan.project) unit = g.add_project(unit, plan.columns);
    leaf_unit[relation] = unit;
    leaf_plans[relation] = std::move(plan);
  }

  // Phase 3: emit join-pattern nodes (children precede parents by
  // construction order).
  std::vector<NodeId> pattern_node(merge.patterns().size(), -1);
  auto ref_node = [&](const PatternRef& ref) -> NodeId {
    if (ref.is_base()) return leaf_unit.at(ref.base);
    const NodeId id = pattern_node[static_cast<std::size_t>(ref.pattern)];
    MVD_ASSERT(id >= 0);
    return id;
  };
  for (std::size_t p = 0; p < merge.patterns().size(); ++p) {
    const Pattern& pat = merge.patterns()[p];
    std::vector<ExprPtr> preds;
    for (const JoinPredicate& j : pat.preds_here) preds.push_back(j.expr());
    ExprPtr pred = preds.empty() ? lit(Value::boolean(true))
                                 : conj(std::move(preds));
    pattern_node[p] =
        g.add_join(ref_node(pat.left), ref_node(pat.right), pred);
  }

  // Phase 4: per-query private path — residual selection, projection,
  // query root.
  for (std::size_t idx : order) {
    const QuerySpec& q = queries[idx];
    NodeId top = ref_node(query_top.at(q.name()));
    std::vector<ExprPtr> residual;
    for (const std::string& r : q.relations()) {
      const LeafPlan& lp = leaf_plans.at(r);
      if (auto it = lp.residuals.find(q.name()); it != lp.residuals.end()) {
        residual.push_back(it->second);
      }
    }
    for (const ExprPtr& s : q.multi_relation_selections()) {
      residual.push_back(s);
    }
    if (!residual.empty()) {
      top = g.add_select(top, conj(std::move(residual)));
    }
    if (q.has_aggregation()) {
      top = g.add_aggregate(top, q.group_by(), q.aggregates());
    } else {
      top = g.add_project(top, q.projection());
    }
    g.add_query(q.name(), q.frequency(), top);
  }

  {
    MVD_TRACE_SPAN("mvpp", "annotate");
    g.annotate(optimizer_->cost_model());
  }
  if (build_span.active()) {
    build_span.arg("queries", static_cast<double>(queries.size()));
    build_span.arg("nodes", static_cast<double>(g.size()));
    build_span.arg("patterns", static_cast<double>(merge.patterns().size()));
  }
  if (counters_enabled()) {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("mvpp/build/builds").increment();
    reg.counter("mvpp/build/nodes").add(static_cast<double>(g.size()));
    reg.counter("mvpp/build/join_patterns")
        .add(static_cast<double>(merge.patterns().size()));
  }
  {
    LintContext ctx;
    ctx.graph = &g;
    ctx.cost_model = &optimizer_->cost_model();
    lint_stage_hook("build", ctx);
  }
  return result;
}

std::vector<MvppBuildResult> MvppBuilder::build_all_rotations(
    const std::vector<QuerySpec>& queries, std::size_t threads) const {
  MVD_TRACE_SPAN("mvpp", "build-all-rotations");
  if (counters_enabled()) {
    MetricsRegistry::global().counter("mvpp/build/rotations")
        .add(static_cast<double>(queries.size()));
  }
  std::vector<std::size_t> order = initial_order(queries);
  std::vector<std::vector<std::size_t>> orders;
  orders.reserve(queries.size());
  for (std::size_t k = 0; k < queries.size(); ++k) {
    orders.push_back(order);
    std::rotate(order.begin(), order.begin() + 1, order.end());
  }
  // Each rotation is an independent merge over const state (optimizer,
  // cost model, catalog), so the k builds run concurrently and land in
  // their rotation's slot — identical output to the serial loop.
  std::vector<MvppBuildResult> out(orders.size());
  parallel_for_each_index(orders.size(), threads, [&](std::size_t i) {
    out[i] = build(queries, orders[i]);
  });
  return out;
}

MvppChoice choose_best_mvpp(const std::vector<MvppBuildResult>& candidates,
                            MaintenancePolicy policy,
                            const SelectionAlgorithm& algorithm) {
  if (candidates.empty()) throw PlanError("no MVPP candidates to choose from");
  const SelectionAlgorithm algo =
      algorithm ? algorithm : [](const MvppEvaluator& eval) {
        return yang_heuristic(eval);
      };
  MvppChoice best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    MvppEvaluator eval(candidates[i].graph, policy);
    SelectionResult sel = algo(eval);
    if (sel.costs.total() < best_cost) {
      best_cost = sel.costs.total();
      best.index = i;
      best.selection = std::move(sel);
    }
  }
  return best;
}

}  // namespace mvd
