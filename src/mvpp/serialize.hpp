// Machine-readable serialization of MVPPs and design decisions — stable
// JSON meant for dashboards, diffing design runs, and driving external
// tooling (e.g. feeding the DOT/JSON into a UI), plus the inverse
// loader so saved graphs can be re-linted and re-evaluated offline.
#pragma once

#include "src/catalog/catalog.hpp"
#include "src/common/json.hpp"
#include "src/mvpp/evaluation.hpp"
#include "src/mvpp/selection.hpp"

namespace mvd {

/// Render an expression as parseable SQL: dates as DATE 'YYYY-MM-DD',
/// strings single-quoted with '' escaping, <> for inequality,
/// parenthesized AND/OR/NOT. parse_predicate(expr_to_sql(e)) rebuilds a
/// structurally equal expression.
std::string expr_to_sql(const ExprPtr& expr);

/// The full graph: one entry per node with kind, name, payload (predicate
/// / columns / aggregates / relation), children, frequencies and the
/// annotation results (rows, blocks, op_cost, full_cost). Predicates are
/// emitted both display-form ("predicate") and re-parseable
/// ("predicate_sql"); aggregates also get structured "aggregate_specs".
Json to_json(const MvppGraph& graph);

/// Rebuild an MVPP from to_json() output. Base schemas come from
/// `catalog`; node ids must replay identically (they do for any graph
/// to_json produced). When the document was annotated: re-annotates via
/// `cost_model` when given, otherwise overlays the recorded
/// rows/blocks/costs (leaving plan exprs unset — numeric lint rules and
/// cost evaluation still work; schema rules skip). Throws ParseError on
/// malformed documents and CatalogError on unknown relations.
MvppGraph mvpp_from_json(const Json& doc, const Catalog& catalog,
                         const CostModel* cost_model = nullptr);

/// A selection outcome: algorithm, chosen view names, cost breakdown,
/// decision trace.
Json to_json(const MvppGraph& graph, const SelectionResult& selection);

/// Selection outcome plus per-view detail under the given evaluator
/// (answering/maintenance costs per query and per view).
Json design_report_json(const MvppEvaluator& eval,
                        const SelectionResult& selection);

}  // namespace mvd
