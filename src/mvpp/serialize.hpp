// Machine-readable serialization of MVPPs and design decisions — stable
// JSON meant for dashboards, diffing design runs, and driving external
// tooling (e.g. feeding the DOT/JSON into a UI).
#pragma once

#include "src/common/json.hpp"
#include "src/mvpp/evaluation.hpp"
#include "src/mvpp/selection.hpp"

namespace mvd {

/// The full graph: one entry per node with kind, name, payload (predicate
/// / columns / aggregates / relation), children, frequencies and the
/// annotation results (rows, blocks, op_cost, full_cost).
Json to_json(const MvppGraph& graph);

/// A selection outcome: algorithm, chosen view names, cost breakdown,
/// decision trace.
Json to_json(const MvppGraph& graph, const SelectionResult& selection);

/// Selection outcome plus per-view detail under the given evaluator
/// (answering/maintenance costs per query and per view).
Json design_report_json(const MvppEvaluator& eval,
                        const SelectionResult& selection);

}  // namespace mvd
