#include "src/mvpp/fast_eval.hpp"

#include <algorithm>

#include "src/common/assert.hpp"
#include "src/cost/cost_model.hpp"
#include "src/obs/metrics.hpp"

namespace mvd {

FastMaterializedSet to_fast_set(const MaterializedSet& m,
                                std::size_t universe) {
  FastMaterializedSet out(universe);
  for (NodeId v : m) out.set(v);
  return out;
}

MaterializedSet to_materialized_set(const FastMaterializedSet& m) {
  MaterializedSet out;
  m.for_each([&](NodeId v) { out.insert(v); });
  return out;
}

FastMvppEvaluator::FastMvppEvaluator(const MvppEvaluator& eval,
                                     const GraphClosures& closures)
    : closures_(&closures),
      policy_(eval.policy()),
      index_(eval.index_policy()) {
  const MvppGraph& g = eval.graph();
  MVD_ASSERT_MSG(g.annotated(), "graph must be annotate()d");
  MVD_ASSERT_MSG(closures.size() == g.size(),
                 "closures describe a different graph");
  node_count_ = g.size();

  kind_.resize(node_count_);
  op_cost_.resize(node_count_);
  blocks_.resize(node_count_);
  rows_.resize(node_count_);
  full_cost_.resize(node_count_);
  update_factor_.assign(node_count_, 0.0);
  pure_equality_.assign(node_count_, 0);
  child_begin_.assign(node_count_ + 1, 0);

  for (std::size_t i = 0; i < node_count_; ++i) {
    const MvppNode& n = g.node(static_cast<NodeId>(i));
    kind_[i] = n.kind;
    op_cost_[i] = n.op_cost;
    blocks_[i] = n.blocks;
    rows_[i] = n.rows;
    full_cost_[i] = n.full_cost;
    if (n.kind == MvppNodeKind::kSelect) {
      pure_equality_[i] = is_pure_equality(n.predicate) ? 1 : 0;
    }
    child_begin_[i + 1] =
        child_begin_[i] + static_cast<std::uint32_t>(n.children.size());
  }
  child_ids_.reserve(child_begin_[node_count_]);
  for (std::size_t i = 0; i < node_count_; ++i) {
    const MvppNode& n = g.node(static_cast<NodeId>(i));
    child_ids_.insert(child_ids_.end(), n.children.begin(), n.children.end());
  }

  // Update factors, folded over bases_under in ascending order — the same
  // order (and therefore the same floating-point result) as the legacy
  // MvppEvaluator::update_factor.
  for (NodeId v : closures.operation_ids()) {
    double factor = 0;
    for (NodeId b : closures.bases_under(v)) {
      const double fu = g.node(b).frequency;
      if (policy_.mode == MaintenancePolicy::Mode::kBatchRecompute) {
        factor = std::max(factor, fu);
      } else {
        factor += fu;
      }
    }
    update_factor_[static_cast<std::size_t>(v)] = factor;
  }

  for (NodeId q : closures.query_ids()) {
    const MvppNode& n = g.node(q);
    query_terms_.push_back(QueryTerm{q, n.children[0], n.frequency});
  }

  memo_.assign(node_count_, 0.0);
  memo_epoch_.assign(node_count_, 0);
  query_term_value_.assign(query_terms_.size(), 0.0);
  maint_term_value_.assign(node_count_, 0.0);
  current_ = FastMaterializedSet(node_count_);
  scratch_ = FastMaterializedSet(node_count_);
  tally_ = counters_enabled();
}

FastMvppEvaluator::~FastMvppEvaluator() {
  if (!tally_ || evaluations_ == 0) return;
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("selection/fast_eval/evaluations")
      .add(static_cast<double>(evaluations_));
  reg.counter("selection/fast_eval/full_evals")
      .add(static_cast<double>(full_evals_));
  reg.counter("selection/fast_eval/delta_probes")
      .add(static_cast<double>(delta_probes_));
  reg.counter("selection/fast_eval/memo_hits")
      .add(static_cast<double>(memo_hits_));
  reg.counter("selection/fast_eval/memo_walks")
      .add(static_cast<double>(memo_walks_));
  reg.counter("selection/fast_eval/terms_reused")
      .add(static_cast<double>(terms_reused_));
  reg.counter("selection/fast_eval/terms_recomputed")
      .add(static_cast<double>(terms_recomputed_));
}

double FastMvppEvaluator::op_contribution(NodeId v,
                                          const FastMaterializedSet& m) const {
  const std::size_t i = static_cast<std::size_t>(v);
  if (!index_.enabled) return op_cost_[i];
  switch (kind_[i]) {
    case MvppNodeKind::kSelect: {
      const NodeId c = child_ids_[child_begin_[i]];
      if (m.test(c) && pure_equality_[i]) {
        return std::max(1.0, blocks_[i]);
      }
      return op_cost_[i];
    }
    case MvppNodeKind::kJoin: {
      double best = op_cost_[i];
      for (int side = 0; side < 2; ++side) {
        const NodeId inner =
            child_ids_[child_begin_[i] + static_cast<std::uint32_t>(side)];
        const NodeId outer =
            child_ids_[child_begin_[i] + static_cast<std::uint32_t>(1 - side)];
        if (!m.test(inner)) continue;
        const double probes = rows_[static_cast<std::size_t>(outer)] *
                              index_.probe_cost_blocks;
        best = std::min(best, blocks_[static_cast<std::size_t>(outer)] + probes);
      }
      return best;
    }
    default:
      return op_cost_[i];
  }
}

double FastMvppEvaluator::produce(NodeId v, const FastMaterializedSet& m) {
  const std::size_t i = static_cast<std::size_t>(v);
  if (memo_epoch_[i] == epoch_) {
    if (tally_) ++memo_hits_;
    return memo_[i];
  }
  if (tally_) ++memo_walks_;
  double cost = 0;
  if (kind_[i] != MvppNodeKind::kBase) {
    cost = op_contribution(v, m);
    for (std::uint32_t ci = child_begin_[i]; ci < child_begin_[i + 1]; ++ci) {
      const NodeId c = child_ids_[ci];
      const bool stored =
          kind_[static_cast<std::size_t>(c)] == MvppNodeKind::kBase ||
          m.test(c);
      if (!stored) cost += produce(c, m);
    }
  }
  memo_epoch_[i] = epoch_;
  memo_[i] = cost;
  return cost;
}

double FastMvppEvaluator::answer(NodeId result, const FastMaterializedSet& m) {
  if (m.test(result)) return blocks_[static_cast<std::size_t>(result)];
  return produce(result, m);
}

double FastMvppEvaluator::maintenance_term(NodeId v,
                                           const FastMaterializedSet& m) {
  const std::size_t i = static_cast<std::size_t>(v);
  const double recompute =
      policy_.reuse_materialized ? produce(v, m) : full_cost_[i];
  return update_factor_[i] * recompute;
}

MvppCosts FastMvppEvaluator::evaluate(const FastMaterializedSet& m) {
  ++epoch_;
  ++evaluations_;
  if (tally_) ++full_evals_;
  MvppCosts costs;
  for (const QueryTerm& q : query_terms_) {
    costs.query_processing += q.frequency * answer(q.result, m);
  }
  m.for_each([&](NodeId v) { costs.maintenance += maintenance_term(v, m); });
  return costs;
}

void FastMvppEvaluator::load(const FastMaterializedSet& m) {
  MVD_ASSERT(m.universe() == node_count_);
  current_ = m;
  ++epoch_;
  ++evaluations_;
  if (tally_) ++full_evals_;
  double qp = 0;
  for (std::size_t qi = 0; qi < query_terms_.size(); ++qi) {
    const QueryTerm& q = query_terms_[qi];
    query_term_value_[qi] = q.frequency * answer(q.result, current_);
    qp += query_term_value_[qi];
  }
  double maint = 0;
  current_.for_each([&](NodeId v) {
    maint_term_value_[static_cast<std::size_t>(v)] =
        maintenance_term(v, current_);
    maint += maint_term_value_[static_cast<std::size_t>(v)];
  });
  total_ = qp + maint;
  loaded_ = true;
}

bool FastMvppEvaluator::term_affected(NodeId owner, const NodeId* toggles,
                                      std::size_t count) const {
  for (std::size_t i = 0; i < count; ++i) {
    if (owner == toggles[i] || closures_->ancestors(toggles[i]).test(owner)) {
      return true;
    }
  }
  return false;
}

double FastMvppEvaluator::eval_toggled(const NodeId* toggles,
                                       std::size_t count, bool commit) {
  MVD_ASSERT_MSG(loaded_, "load() a set before probing");
  scratch_ = current_;
  for (std::size_t i = 0; i < count; ++i) scratch_.toggle(toggles[i]);
  ++epoch_;
  ++evaluations_;
  if (tally_) ++delta_probes_;

  // Unchanged terms reuse their cached value; affected terms — owners in
  // a toggled node's ancestor cone, plus the toggled members themselves —
  // fall back to a fresh walk under the toggled set. Re-summing every
  // term in the legacy order keeps the result bit-identical to a full
  // evaluation.
  double qp = 0;
  for (std::size_t qi = 0; qi < query_terms_.size(); ++qi) {
    const QueryTerm& q = query_terms_[qi];
    double term = query_term_value_[qi];
    if (term_affected(q.query, toggles, count)) {
      term = q.frequency * answer(q.result, scratch_);
      if (tally_) ++terms_recomputed_;
    } else if (tally_) {
      ++terms_reused_;
    }
    if (commit) query_term_value_[qi] = term;
    qp += term;
  }
  double maint = 0;
  scratch_.for_each([&](NodeId v) {
    double term = maint_term_value_[static_cast<std::size_t>(v)];
    if (term_affected(v, toggles, count)) {
      term = maintenance_term(v, scratch_);
      if (tally_) ++terms_recomputed_;
    } else if (tally_) {
      ++terms_reused_;
    }
    if (commit) maint_term_value_[static_cast<std::size_t>(v)] = term;
    maint += term;
  });
  const double total = qp + maint;
  if (commit) {
    current_ = scratch_;
    total_ = total;
  }
  return total;
}

double FastMvppEvaluator::probe_toggle(NodeId v) {
  return eval_toggled(&v, 1, /*commit=*/false);
}

double FastMvppEvaluator::probe_swap(NodeId out, NodeId in) {
  MVD_ASSERT(out != in);
  const NodeId toggles[2] = {out, in};
  return eval_toggled(toggles, 2, /*commit=*/false);
}

void FastMvppEvaluator::commit_toggle(NodeId v) {
  eval_toggled(&v, 1, /*commit=*/true);
}

}  // namespace mvd
