// Rewriting MVPP nodes into executable plans that read from the
// materialized frontier.
//
// Once a materialized set M is chosen, a node's result is computed by a
// plan whose leaves are (a) base-relation scans and (b) scans of stored
// views — any descendant in M is read by name instead of being re-derived.
// These plans are what the warehouse actually runs: views are refreshed
// with refresh plans (M excluding the view itself), queries are answered
// with answer plans (M as-is).
#pragma once

#include "src/mvpp/evaluation.hpp"

namespace mvd {

/// Plan computing `node`'s result given M. Descendants in M become named
/// scans (schema taken from their annotated expr); `node` itself is
/// rebuilt even when it is in M — callers wanting a stored read should
/// test membership first (answer_plan does).
PlanPtr refresh_plan(const MvppGraph& graph, NodeId node,
                     const MaterializedSet& m);

/// Plan answering a query root: a scan of its stored result when the
/// result node is in M, otherwise refresh_plan of the result node.
PlanPtr answer_plan(const MvppGraph& graph, NodeId query,
                    const MaterializedSet& m);

}  // namespace mvd
