// Fast-path cost evaluation (same semantics as MvppEvaluator, different
// machinery).
//
// MvppEvaluator::total_cost re-walks the DAG with a std::map memo and
// re-derives bases_under()/queries_using() per call; the selection
// algorithms additionally copy whole std::set candidate sets per probe.
// This engine removes all of that for the plain (non-derived) evaluator:
//
//   - FastMaterializedSet is a dense NodeBitset: O(1) membership, copies
//     that are a few words.
//   - Node payloads (op_cost, blocks, rows, Ca, children CSR, pure-
//     equality flags, update factors) live in flat arrays indexed by
//     NodeId, built once from the annotated graph + GraphClosures.
//   - produce-cost memoization is a flat double array invalidated by
//     bumping an epoch counter — no clearing, no allocation per probe.
//   - load()/probe/commit keep the per-query answer terms and per-member
//     maintenance terms of the current set cached. Toggling v can only
//     change the terms whose owner lies in v's strict-ancestor cone (a
//     node's production cost depends on exactly the membership of its
//     descendants), so a probe recomputes just those terms and re-sums.
//     When the cone spans the whole graph the probe degrades gracefully
//     into a full evaluation — that is the fallback, not an error.
//
// Every sum is accumulated in the same order as the legacy evaluator
// (queries ascending, members ascending, children in declaration order),
// so full evaluations, probes, and committed totals are bit-identical to
// MvppEvaluator::total_cost — searches driven by this engine pick the
// same sets, not just similarly-priced ones.
//
// Instances are cheap to build (one pass over the graph) and are NOT
// thread-safe: the parallel search drivers build one per worker.
#pragma once

#include <cstdint>
#include <vector>

#include "src/mvpp/closures.hpp"
#include "src/mvpp/evaluation.hpp"

namespace mvd {

using FastMaterializedSet = NodeBitset;

/// Dense representation of a MaterializedSet for `universe` graph nodes.
FastMaterializedSet to_fast_set(const MaterializedSet& m, std::size_t universe);

/// Back to the std::set representation used by the public API.
MaterializedSet to_materialized_set(const FastMaterializedSet& m);

class FastMvppEvaluator {
 public:
  /// Snapshot of `eval`'s graph/policy/index. `closures` must describe
  /// the same graph and outlive the evaluator.
  FastMvppEvaluator(const MvppEvaluator& eval, const GraphClosures& closures);

  /// Flushes the local work tallies (probes vs full loads, memo epoch
  /// hits, reused vs recomputed terms) to the global MetricsRegistry
  /// under "selection/fast_eval/..." when counters are enabled.
  ~FastMvppEvaluator();

  std::size_t universe() const { return node_count_; }
  const GraphClosures& closures() const { return *closures_; }

  // ---- Stateless full evaluation (epoch-memoized) ----

  MvppCosts evaluate(const FastMaterializedSet& m);
  double total_cost(const FastMaterializedSet& m) { return evaluate(m).total(); }

  // ---- Incremental session over one evolving set ----

  /// Full evaluation of `m`, caching every per-query and per-member term.
  void load(const FastMaterializedSet& m);

  const FastMaterializedSet& current() const { return current_; }
  double current_total() const { return total_; }

  /// Total cost of current() with v toggled; cached state unchanged.
  double probe_toggle(NodeId v);
  /// Total cost of current() with `out` dropped and `in` added.
  double probe_swap(NodeId out, NodeId in);
  /// Signed cost change of toggling v: probe_toggle(v) − current_total().
  double delta_cost(NodeId v) { return probe_toggle(v) - total_; }

  /// Apply a toggle and update the cached terms.
  void commit_toggle(NodeId v);

  /// Cost evaluations answered so far (full + probes); bench telemetry.
  std::size_t evaluations() const { return evaluations_; }

 private:
  struct QueryTerm {
    NodeId query = -1;
    NodeId result = -1;
    double frequency = 0;
  };

  double produce(NodeId v, const FastMaterializedSet& m);
  double op_contribution(NodeId v, const FastMaterializedSet& m) const;
  double answer(NodeId result, const FastMaterializedSet& m);
  double maintenance_term(NodeId v, const FastMaterializedSet& m);
  /// Shared probe/commit body over one or two toggled nodes.
  double eval_toggled(const NodeId* toggles, std::size_t count, bool commit);
  bool term_affected(NodeId owner, const NodeId* toggles,
                     std::size_t count) const;

  const GraphClosures* closures_;
  MaintenancePolicy policy_;
  IndexPolicy index_;
  std::size_t node_count_ = 0;

  // Flat per-node payloads (indexed by NodeId).
  std::vector<MvppNodeKind> kind_;
  std::vector<double> op_cost_;
  std::vector<double> blocks_;
  std::vector<double> rows_;
  std::vector<double> full_cost_;
  std::vector<double> update_factor_;
  std::vector<char> pure_equality_;  // kSelect: predicate is pure equality
  // Children in CSR layout (declaration order preserved).
  std::vector<std::uint32_t> child_begin_;
  std::vector<NodeId> child_ids_;

  std::vector<QueryTerm> query_terms_;  // queries ascending

  // Epoch-invalidated produce memo.
  std::uint32_t epoch_ = 0;
  std::vector<double> memo_;
  std::vector<std::uint32_t> memo_epoch_;

  // Incremental session state.
  FastMaterializedSet current_;
  FastMaterializedSet scratch_;
  double total_ = 0;
  std::vector<double> query_term_value_;  // aligned with query_terms_
  std::vector<double> maint_term_value_;  // by NodeId, valid for members
  bool loaded_ = false;

  std::size_t evaluations_ = 0;

  // Local observability tallies — plain members bumped behind `tally_`
  // (counters_enabled() sampled once at construction) and flushed to the
  // registry in the destructor, so the probe hot loop never touches an
  // atomic. Not thread-safe, like the rest of the evaluator.
  bool tally_ = false;
  std::size_t full_evals_ = 0;   // evaluate()/load() walks
  std::size_t delta_probes_ = 0; // eval_toggled() calls
  std::size_t memo_hits_ = 0;    // produce() answered by the epoch memo
  std::size_t memo_walks_ = 0;   // produce() recursions actually taken
  std::size_t terms_reused_ = 0; // probe terms outside every toggle cone
  std::size_t terms_recomputed_ = 0;
};

}  // namespace mvd
