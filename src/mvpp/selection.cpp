#include "src/mvpp/selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"
#include "src/common/units.hpp"

namespace mvd {

SelectionResult evaluate_strategy(const MvppEvaluator& eval, std::string name,
                                  MaterializedSet m) {
  SelectionResult r;
  r.algorithm = std::move(name);
  r.costs = eval.evaluate(m);
  r.materialized = std::move(m);
  return r;
}

SelectionResult select_nothing(const MvppEvaluator& eval) {
  return evaluate_strategy(eval, "materialize-nothing", {});
}

SelectionResult select_all_query_results(const MvppEvaluator& eval) {
  MaterializedSet m;
  for (NodeId q : eval.graph().query_ids()) {
    m.insert(eval.graph().node(q).children[0]);
  }
  return evaluate_strategy(eval, "materialize-all-queries", std::move(m));
}

SelectionResult select_all_operations(const MvppEvaluator& eval) {
  MaterializedSet m;
  for (NodeId v : eval.graph().operation_ids()) m.insert(v);
  return evaluate_strategy(eval, "materialize-everything", std::move(m));
}

SelectionResult yang_heuristic(const MvppEvaluator& eval, YangOptions options) {
  const MvppGraph& g = eval.graph();
  SelectionResult r;
  r.algorithm = "yang-heuristic";

  // Step 2: candidates with positive weight, by descending weight.
  std::vector<NodeId> lv;
  for (NodeId v : g.operation_ids()) {
    if (eval.weight(v) > 0) lv.push_back(v);
  }
  std::sort(lv.begin(), lv.end(), [&](NodeId a, NodeId b) {
    const double wa = eval.weight(a);
    const double wb = eval.weight(b);
    if (wa != wb) return wa > wb;
    return a < b;  // deterministic tie-break
  });
  {
    std::vector<std::string> names;
    for (NodeId v : lv) {
      names.push_back(g.node(v).name + "(w=" + format_blocks(eval.weight(v)) +
                      ")");
    }
    r.trace.push_back("LV = <" + join(names, ", ") + ">");
  }

  MaterializedSet m;
  while (!lv.empty()) {
    const NodeId v = lv.front();
    lv.erase(lv.begin());
    const MvppNode& n = g.node(v);

    if (options.skip_when_parents_materialized && !n.parents.empty()) {
      const bool all_parents = std::all_of(
          n.parents.begin(), n.parents.end(), [&](NodeId p) {
            return g.node(p).kind != MvppNodeKind::kQuery && m.contains(p);
          });
      if (all_parents) {
        r.trace.push_back(n.name + ": skipped, all parents materialized");
        continue;
      }
    }

    // Step 5: Cs = Σ_{q∈Ov} fq(q)·(Ca(v) − Σ_{u∈S{v}∩M} Ca(u))
    //             − fu-factor(v)·(recompute cost of v under M).
    double replicated = 0;
    for (NodeId u : g.descendants(v)) {
      if (m.contains(u)) replicated += g.node(u).full_cost;
    }
    double access_saving = 0;
    for (NodeId q : g.queries_using(v)) {
      access_saving += g.node(q).frequency * (n.full_cost - replicated);
    }
    const double recompute = options.reuse_aware_maintenance_gain
                                 ? eval.produce_cost(v, m)
                                 : n.full_cost;
    const double upkeep = eval.update_factor(v) * recompute;
    const double cs = access_saving - upkeep;

    if (cs > 0) {
      m.insert(v);
      r.trace.push_back(n.name + ": Cs=" + format_blocks(cs) +
                        " > 0, materialize");
    } else {
      r.trace.push_back(n.name + ": Cs=" + format_blocks(cs) + " <= 0, reject");
      if (options.branch_pruning) {
        const std::set<NodeId> branch = [&] {
          std::set<NodeId> b = g.ancestors(v);
          const std::set<NodeId> d = g.descendants(v);
          b.insert(d.begin(), d.end());
          return b;
        }();
        const auto before = lv.size();
        lv.erase(std::remove_if(lv.begin(), lv.end(),
                                [&](NodeId u) { return branch.contains(u); }),
                 lv.end());
        if (lv.size() != before) {
          r.trace.push_back("  pruned " + std::to_string(before - lv.size()) +
                            " node(s) on the same branch");
        }
      }
    }
  }

  // Step 9: remove v whose direct destinations are all materialized —
  // guarded so cleanup never worsens the solution.
  if (options.final_cleanup) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeId v : m) {
        const MvppNode& n = g.node(v);
        if (n.parents.empty()) continue;
        const bool covered = std::all_of(
            n.parents.begin(), n.parents.end(), [&](NodeId p) {
              return g.node(p).kind != MvppNodeKind::kQuery && m.contains(p);
            });
        if (!covered) continue;
        MaterializedSet without = m;
        without.erase(v);
        if (eval.total_cost(without) <= eval.total_cost(m)) {
          r.trace.push_back(n.name +
                            ": removed in cleanup (all destinations "
                            "materialized)");
          m = std::move(without);
          changed = true;
          break;
        }
      }
    }
  }

  r.costs = eval.evaluate(m);
  r.materialized = std::move(m);
  return r;
}

SelectionResult exhaustive_optimal(const MvppEvaluator& eval,
                                   std::size_t max_candidates) {
  const std::vector<NodeId> candidates = eval.graph().operation_ids();
  if (candidates.size() > max_candidates) {
    throw PlanError(str_cat("exhaustive search over ", candidates.size(),
                            " candidates exceeds the limit of ",
                            max_candidates));
  }
  SelectionResult r;
  r.algorithm = "exhaustive-optimal";
  double best = std::numeric_limits<double>::infinity();
  MaterializedSet best_set;
  const std::size_t combos = std::size_t{1} << candidates.size();
  for (std::size_t mask = 0; mask < combos; ++mask) {
    MaterializedSet m;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (mask & (std::size_t{1} << i)) m.insert(candidates[i]);
    }
    const double cost = eval.total_cost(m);
    if (cost < best) {
      best = cost;
      best_set = std::move(m);
    }
  }
  r.costs = eval.evaluate(best_set);
  r.materialized = std::move(best_set);
  return r;
}

namespace {

struct BnbContext {
  const MvppEvaluator* eval = nullptr;
  std::vector<NodeId> candidates;  // decision order
  MaterializedSet included;
  double best_cost = 0;
  MaterializedSet best_set;
  std::size_t nodes_visited = 0;

  // Lower bound for the current partial decision: included members are
  // fixed in, candidates[depth..] are free. The query side is bounded by
  // materializing every free candidate (query cost is monotone
  // non-increasing in M); each included view's maintenance is bounded by
  // recomputing against the fullest possible frontier (reuse-aware
  // maintenance is non-increasing in M; the no-reuse policy is constant,
  // for which this is exact).
  double lower_bound(std::size_t depth) const {
    MaterializedSet fullest = included;
    for (std::size_t i = depth; i < candidates.size(); ++i) {
      fullest.insert(candidates[i]);
    }
    double bound = eval->query_processing_cost(fullest);
    for (NodeId v : included) bound += eval->maintenance_cost(v, fullest);
    return bound;
  }

  void visit(std::size_t depth) {
    ++nodes_visited;
    if (lower_bound(depth) >= best_cost - 1e-9) return;  // prune
    if (depth == candidates.size()) {
      const double cost = eval->total_cost(included);
      if (cost < best_cost) {
        best_cost = cost;
        best_set = included;
      }
      return;
    }
    const NodeId v = candidates[depth];
    // Include-first: high-weight candidates usually belong in M, so the
    // incumbent improves early and prunes more.
    included.insert(v);
    visit(depth + 1);
    included.erase(v);
    visit(depth + 1);
  }
};

}  // namespace

SelectionResult branch_and_bound_optimal(const MvppEvaluator& eval,
                                         std::size_t max_candidates) {
  BnbContext ctx;
  ctx.eval = &eval;
  ctx.candidates = eval.graph().operation_ids();
  if (ctx.candidates.size() > max_candidates) {
    throw PlanError(str_cat("branch and bound over ", ctx.candidates.size(),
                            " candidates exceeds the limit of ",
                            max_candidates));
  }
  // Decide high-weight nodes first.
  std::sort(ctx.candidates.begin(), ctx.candidates.end(),
            [&](NodeId a, NodeId b) {
              const double wa = eval.weight(a);
              const double wb = eval.weight(b);
              if (wa != wb) return wa > wb;
              return a < b;
            });
  // Seed the incumbent with the greedy solution.
  ctx.best_set = greedy_incremental(eval).materialized;
  ctx.best_cost = eval.total_cost(ctx.best_set);
  ctx.visit(0);

  SelectionResult r;
  r.algorithm = "branch-and-bound";
  r.costs = eval.evaluate(ctx.best_set);
  r.materialized = std::move(ctx.best_set);
  r.trace.push_back(str_cat("visited ", ctx.nodes_visited,
                            " search nodes of ",
                            (std::size_t{1} << (ctx.candidates.size() + 1)) - 1,
                            " possible"));
  return r;
}

SelectionResult greedy_incremental(const MvppEvaluator& eval) {
  SelectionResult r;
  r.algorithm = "greedy-incremental";
  const std::vector<NodeId> candidates = eval.graph().operation_ids();
  MaterializedSet m;
  double current = eval.total_cost(m);
  while (true) {
    NodeId best_v = -1;
    double best_cost = current;
    for (NodeId v : candidates) {
      if (m.contains(v)) continue;
      MaterializedSet next = m;
      next.insert(v);
      const double cost = eval.total_cost(next);
      if (cost < best_cost) {
        best_cost = cost;
        best_v = v;
      }
    }
    if (best_v < 0) break;
    m.insert(best_v);
    r.trace.push_back(eval.graph().node(best_v).name + ": total " +
                      format_blocks(current) + " -> " +
                      format_blocks(best_cost));
    current = best_cost;
  }
  r.costs = eval.evaluate(m);
  r.materialized = std::move(m);
  return r;
}

SelectionResult local_search(const MvppEvaluator& eval, MaterializedSet start,
                             std::size_t max_rounds) {
  SelectionResult r;
  r.algorithm = "local-search";
  eval.check_materializable(start);
  const std::vector<NodeId> candidates = eval.graph().operation_ids();

  MaterializedSet current = std::move(start);
  double current_cost = eval.total_cost(current);
  for (std::size_t round = 0; round < max_rounds; ++round) {
    MaterializedSet best_move;
    double best_cost = current_cost;
    std::string best_desc;

    auto consider = [&](MaterializedSet next, std::string desc) {
      const double cost = eval.total_cost(next);
      if (cost < best_cost - 1e-9) {
        best_cost = cost;
        best_move = std::move(next);
        best_desc = std::move(desc);
      }
    };

    for (NodeId v : candidates) {
      MaterializedSet toggled = current;
      if (toggled.erase(v) == 0) {
        toggled.insert(v);
        consider(std::move(toggled), "add " + eval.graph().node(v).name);
      } else {
        consider(std::move(toggled), "drop " + eval.graph().node(v).name);
      }
    }
    // Swaps: replace one member with one non-member.
    for (NodeId out : current) {
      for (NodeId in : candidates) {
        if (current.contains(in)) continue;
        MaterializedSet swapped = current;
        swapped.erase(out);
        swapped.insert(in);
        consider(std::move(swapped),
                 "swap " + eval.graph().node(out).name + " -> " +
                     eval.graph().node(in).name);
      }
    }

    if (best_desc.empty()) break;  // local optimum
    current = std::move(best_move);
    current_cost = best_cost;
    r.trace.push_back(best_desc + " -> " + format_blocks(best_cost));
  }
  r.costs = eval.evaluate(current);
  r.materialized = std::move(current);
  return r;
}

double total_view_blocks(const MvppGraph& graph, const MaterializedSet& m) {
  double blocks = 0;
  for (NodeId v : m) blocks += graph.node(v).blocks;
  return blocks;
}

SelectionResult budgeted_greedy(const MvppEvaluator& eval,
                                double budget_blocks) {
  if (!(budget_blocks >= 0)) throw PlanError("negative space budget");
  SelectionResult r;
  r.algorithm = "budgeted-greedy";
  const std::vector<NodeId> candidates = eval.graph().operation_ids();

  MaterializedSet m;
  double used = 0;
  double current = eval.total_cost(m);
  while (true) {
    NodeId best_v = -1;
    double best_density = 0;
    double best_cost = current;
    for (NodeId v : candidates) {
      if (m.contains(v)) continue;
      const double blocks = std::max(eval.graph().node(v).blocks, 1e-9);
      if (used + blocks > budget_blocks) continue;
      MaterializedSet next = m;
      next.insert(v);
      const double cost = eval.total_cost(next);
      const double density = (current - cost) / blocks;
      if (cost < current && density > best_density) {
        best_density = density;
        best_v = v;
        best_cost = cost;
      }
    }
    if (best_v < 0) break;
    m.insert(best_v);
    used += eval.graph().node(best_v).blocks;
    r.trace.push_back(eval.graph().node(best_v).name + ": total " +
                      format_blocks(current) + " -> " +
                      format_blocks(best_cost) + ", space " +
                      format_blocks(used) + "/" +
                      format_blocks(budget_blocks));
    current = best_cost;
  }
  r.costs = eval.evaluate(m);
  r.materialized = std::move(m);
  return r;
}

SelectionResult budgeted_optimal(const MvppEvaluator& eval,
                                 double budget_blocks,
                                 std::size_t max_candidates) {
  if (!(budget_blocks >= 0)) throw PlanError("negative space budget");
  const std::vector<NodeId> candidates = eval.graph().operation_ids();
  if (candidates.size() > max_candidates) {
    throw PlanError(str_cat("budgeted search over ", candidates.size(),
                            " candidates exceeds the limit of ",
                            max_candidates));
  }
  SelectionResult r;
  r.algorithm = "budgeted-optimal";
  double best = std::numeric_limits<double>::infinity();
  MaterializedSet best_set;
  const std::size_t combos = std::size_t{1} << candidates.size();
  for (std::size_t mask = 0; mask < combos; ++mask) {
    MaterializedSet m;
    double blocks = 0;
    bool fits = true;
    for (std::size_t i = 0; i < candidates.size() && fits; ++i) {
      if (mask & (std::size_t{1} << i)) {
        m.insert(candidates[i]);
        blocks += eval.graph().node(candidates[i]).blocks;
        fits = blocks <= budget_blocks;
      }
    }
    if (!fits) continue;
    const double cost = eval.total_cost(m);
    if (cost < best) {
      best = cost;
      best_set = std::move(m);
    }
  }
  r.costs = eval.evaluate(best_set);
  r.materialized = std::move(best_set);
  return r;
}

SelectionResult simulated_annealing(const MvppEvaluator& eval,
                                    AnnealingOptions options) {
  SelectionResult r;
  r.algorithm = "simulated-annealing";
  const std::vector<NodeId> candidates = eval.graph().operation_ids();
  if (candidates.empty()) {
    r.costs = eval.evaluate({});
    return r;
  }

  MaterializedSet current = greedy_incremental(eval).materialized;
  double current_cost = eval.total_cost(current);
  MaterializedSet best = current;
  double best_cost = current_cost;

  Rng rng(options.seed);
  double temperature =
      std::max(options.initial_temperature * eval.total_cost({}), 1e-9);
  for (std::size_t it = 0; it < options.iterations; ++it) {
    const NodeId v = candidates[rng.index(candidates.size())];
    MaterializedSet next = current;
    if (!next.erase(v)) next.insert(v);
    const double next_cost = eval.total_cost(next);
    const double delta = next_cost - current_cost;
    if (delta <= 0 || rng.uniform01() < std::exp(-delta / temperature)) {
      current = std::move(next);
      current_cost = next_cost;
      if (current_cost < best_cost) {
        best = current;
        best_cost = current_cost;
      }
    }
    temperature *= options.cooling;
  }
  r.costs = eval.evaluate(best);
  r.materialized = std::move(best);
  return r;
}

}  // namespace mvd
