#include "src/mvpp/selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <typeinfo>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/common/strings.hpp"
#include "src/common/units.hpp"
#include "src/lint/lint.hpp"
#include "src/mvpp/fast_eval.hpp"
#include "src/obs/trace.hpp"

namespace mvd {

namespace {

/// True when `eval` is exactly the base block-access evaluator, whose
/// semantics the bitset fast path reproduces bit-for-bit. Derived
/// evaluators (e.g. the communication-aware distributed one) override
/// the virtual cost hooks, so they keep the generic std::set path.
bool has_fast_path(const MvppEvaluator& eval) {
  return typeid(eval) == typeid(MvppEvaluator);
}

// ---- Toggle probing ---------------------------------------------------
//
// Every local algorithm (greedy, local search, annealing, budgeted
// greedy) explores neighbors of a current set by toggling one or two
// nodes. The Prober interface hides how a probe is priced: the fast
// implementation asks the incremental bitset engine (cached terms +
// ancestor-cone recomputation), the legacy one copies the std::set and
// calls MvppEvaluator::total_cost exactly like the original code — so
// custom evaluator subclasses see the same calls as before. Both
// implementations return bit-identical totals for the base evaluator,
// so algorithm decisions do not depend on the path taken.

class Prober {
 public:
  virtual ~Prober() = default;
  virtual double total() const = 0;
  virtual bool contains(NodeId v) const = 0;
  /// Cost of current with v toggled; state unchanged.
  virtual double probe_toggle(NodeId v) = 0;
  /// Cost of current with `out` dropped and `in` added; state unchanged.
  virtual double probe_swap(NodeId out, NodeId in) = 0;
  /// Apply a toggle whose probed cost was `new_total`.
  virtual void commit_toggle(NodeId v, double new_total) = 0;
  virtual MaterializedSet snapshot() const = 0;
};

class LegacyProber final : public Prober {
 public:
  LegacyProber(const MvppEvaluator& eval, MaterializedSet start)
      : eval_(&eval), m_(std::move(start)), total_(eval.total_cost(m_)) {}

  double total() const override { return total_; }
  bool contains(NodeId v) const override { return m_.contains(v); }

  double probe_toggle(NodeId v) override {
    MaterializedSet next = m_;
    if (!next.erase(v)) next.insert(v);
    return eval_->total_cost(next);
  }

  double probe_swap(NodeId out, NodeId in) override {
    MaterializedSet next = m_;
    next.erase(out);
    next.insert(in);
    return eval_->total_cost(next);
  }

  void commit_toggle(NodeId v, double new_total) override {
    if (!m_.erase(v)) m_.insert(v);
    total_ = new_total;
  }

  MaterializedSet snapshot() const override { return m_; }

 private:
  const MvppEvaluator* eval_;
  MaterializedSet m_;
  double total_;
};

class FastProber final : public Prober {
 public:
  FastProber(const MvppEvaluator& eval, const MaterializedSet& start)
      : fast_(eval, eval.closures()) {
    fast_.load(to_fast_set(start, fast_.universe()));
  }

  double total() const override { return fast_.current_total(); }
  bool contains(NodeId v) const override { return fast_.current().test(v); }
  double probe_toggle(NodeId v) override { return fast_.probe_toggle(v); }
  double probe_swap(NodeId out, NodeId in) override {
    return fast_.probe_swap(out, in);
  }
  void commit_toggle(NodeId v, double) override { fast_.commit_toggle(v); }
  MaterializedSet snapshot() const override {
    return to_materialized_set(fast_.current());
  }

 private:
  FastMvppEvaluator fast_;
};

std::unique_ptr<Prober> make_prober(const MvppEvaluator& eval,
                                    MaterializedSet start) {
  if (has_fast_path(eval)) {
    return std::make_unique<FastProber>(eval, start);
  }
  return std::make_unique<LegacyProber>(eval, std::move(start));
}

/// Every algorithm funnels its finished result through here, so the
/// selection-stage lint hook sees each SelectionResult exactly once
/// before it escapes the library.
SelectionResult finish(const MvppEvaluator& eval, SelectionResult r,
                       std::optional<double> budget_blocks = std::nullopt) {
  if (counters_enabled()) {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("selection/runs").increment();
    reg.counter(str_cat("selection/", r.algorithm, "/runs")).increment();
    reg.gauge(str_cat("selection/", r.algorithm, "/best_total"))
        .set(r.costs.total());
    reg.gauge(str_cat("selection/", r.algorithm, "/materialized"))
        .set(static_cast<double>(r.materialized.size()));
  }
  if (lint_hook_level() != LintHookLevel::kOff) {
    LintContext ctx;
    ctx.graph = &eval.graph();
    ctx.closures = &eval.closures();
    ctx.evaluator = &eval;
    ctx.selections.push_back({&r, budget_blocks});
    lint_stage_hook("selection", ctx);
  }
  return r;
}

/// Per-iteration best-total gauge of one algorithm, or nullptr when
/// counters are off. The handle is stable, so search loops set() it
/// freely as the incumbent improves.
Gauge* best_total_gauge(const char* algorithm) {
  if (!counters_enabled()) return nullptr;
  return &MetricsRegistry::global().gauge(
      str_cat("selection/", algorithm, "/best_total"));
}

}  // namespace

SelectionResult evaluate_strategy(const MvppEvaluator& eval, std::string name,
                                  MaterializedSet m) {
  SelectionResult r;
  r.algorithm = std::move(name);
  r.costs = eval.evaluate(m);
  r.materialized = std::move(m);
  return finish(eval, std::move(r));
}

SelectionResult select_nothing(const MvppEvaluator& eval) {
  return evaluate_strategy(eval, "materialize-nothing", {});
}

SelectionResult select_all_query_results(const MvppEvaluator& eval) {
  MaterializedSet m;
  for (NodeId q : eval.graph().query_ids()) {
    m.insert(eval.graph().node(q).children[0]);
  }
  return evaluate_strategy(eval, "materialize-all-queries", std::move(m));
}

SelectionResult select_all_operations(const MvppEvaluator& eval) {
  MaterializedSet m;
  for (NodeId v : eval.graph().operation_ids()) m.insert(v);
  return evaluate_strategy(eval, "materialize-everything", std::move(m));
}

SelectionResult yang_heuristic(const MvppEvaluator& eval, YangOptions options) {
  const MvppGraph& g = eval.graph();
  const GraphClosures& closures = eval.closures();
  MVD_TRACE_SPAN("selection", "yang-heuristic");
  std::size_t pruned_total = 0;
  SelectionResult r;
  r.algorithm = "yang-heuristic";

  // Step 2: candidates with positive weight, by descending weight. Each
  // node's weight is computed once (the sort comparator used to pay two
  // queries_using + bases_under walks per comparison).
  std::vector<double> weight_of(g.size(), 0.0);
  std::vector<NodeId> lv;
  for (NodeId v : closures.operation_ids()) {
    weight_of[static_cast<std::size_t>(v)] = eval.weight(v);
    if (weight_of[static_cast<std::size_t>(v)] > 0) lv.push_back(v);
  }
  std::sort(lv.begin(), lv.end(), [&](NodeId a, NodeId b) {
    const double wa = weight_of[static_cast<std::size_t>(a)];
    const double wb = weight_of[static_cast<std::size_t>(b)];
    if (wa != wb) return wa > wb;
    return a < b;  // deterministic tie-break
  });
  {
    std::vector<std::string> names;
    for (NodeId v : lv) {
      names.push_back(g.node(v).name + "(w=" +
                      format_blocks(weight_of[static_cast<std::size_t>(v)]) +
                      ")");
    }
    r.trace.push_back("LV = <" + join(names, ", ") + ">");
  }

  // Walk LV by index with a pruned-flag mask — the old code popped the
  // front of the vector (O(n) per step) and erased pruned entries with
  // remove_if (another O(n) sweep per rejection).
  MaterializedSet m;
  std::vector<char> pruned(lv.size(), 0);
  for (std::size_t i = 0; i < lv.size(); ++i) {
    if (pruned[i]) continue;
    const NodeId v = lv[i];
    const MvppNode& n = g.node(v);

    if (options.skip_when_parents_materialized && !n.parents.empty()) {
      const bool all_parents = std::all_of(
          n.parents.begin(), n.parents.end(), [&](NodeId p) {
            return g.node(p).kind != MvppNodeKind::kQuery && m.contains(p);
          });
      if (all_parents) {
        r.trace.push_back(n.name + ": skipped, all parents materialized");
        continue;
      }
    }

    // Step 5: Cs = Σ_{q∈Ov} fq(q)·(Ca(v) − Σ_{u∈S{v}∩M} Ca(u))
    //             − fu-factor(v)·(recompute cost of v under M).
    // S{v}∩M via the precomputed descendant bitset: iterate the (small)
    // materialized set instead of walking the closure — same ascending
    // order, so the same floating-point sum.
    const NodeBitset& desc = closures.descendants(v);
    double replicated = 0;
    for (NodeId u : m) {
      if (desc.test(u)) replicated += g.node(u).full_cost;
    }
    double access_saving = 0;
    for (NodeId q : closures.queries_using(v)) {
      access_saving += g.node(q).frequency * (n.full_cost - replicated);
    }
    const double recompute = options.reuse_aware_maintenance_gain
                                 ? eval.produce_cost(v, m)
                                 : n.full_cost;
    const double upkeep = eval.update_factor(v) * recompute;
    const double cs = access_saving - upkeep;

    if (cs > 0) {
      m.insert(v);
      r.trace.push_back(n.name + ": Cs=" + format_blocks(cs) +
                        " > 0, materialize");
    } else {
      r.trace.push_back(n.name + ": Cs=" + format_blocks(cs) + " <= 0, reject");
      if (options.branch_pruning) {
        const NodeBitset& anc = closures.ancestors(v);
        std::size_t dropped = 0;
        for (std::size_t j = i + 1; j < lv.size(); ++j) {
          if (pruned[j]) continue;
          if (anc.test(lv[j]) || desc.test(lv[j])) {
            pruned[j] = 1;
            ++dropped;
          }
        }
        if (dropped > 0) {
          pruned_total += dropped;
          r.trace.push_back("  pruned " + std::to_string(dropped) +
                            " node(s) on the same branch");
        }
      }
    }
  }

  // Step 9: remove v whose direct destinations are all materialized —
  // guarded so cleanup never worsens the solution.
  if (options.final_cleanup) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeId v : m) {
        const MvppNode& n = g.node(v);
        if (n.parents.empty()) continue;
        const bool covered = std::all_of(
            n.parents.begin(), n.parents.end(), [&](NodeId p) {
              return g.node(p).kind != MvppNodeKind::kQuery && m.contains(p);
            });
        if (!covered) continue;
        MaterializedSet without = m;
        without.erase(v);
        if (eval.total_cost(without) <= eval.total_cost(m)) {
          r.trace.push_back(n.name +
                            ": removed in cleanup (all destinations "
                            "materialized)");
          m = std::move(without);
          changed = true;
          break;
        }
      }
    }
  }

  if (counters_enabled()) {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("selection/yang/candidates").add(static_cast<double>(lv.size()));
    reg.counter("selection/yang/admitted").add(static_cast<double>(m.size()));
    reg.counter("selection/yang/pruned").add(static_cast<double>(pruned_total));
  }
  r.costs = eval.evaluate(m);
  r.materialized = std::move(m);
  return finish(eval, std::move(r));
}

namespace {

// Shared driver for the two 2^n enumerations. Shards the mask range
// across threads, each worker pricing subsets with its own fast engine;
// the reduction (lowest cost, then lowest mask — masks assign bit i to
// candidates[i], ids ascending) is exactly the winner the serial
// first-strict-improvement loop keeps, so the parallel result is
// bit-identical to the serial one. `admit(mask)` filters subsets (the
// space budget); return false to skip pricing.
struct MaskSearchBest {
  double cost = std::numeric_limits<double>::infinity();
  std::size_t mask = 0;
  bool valid = false;
};

template <typename Admit>
MaskSearchBest fast_mask_search(const MvppEvaluator& eval,
                                const std::vector<NodeId>& candidates,
                                std::size_t threads, const Admit& admit) {
  const std::size_t combos = std::size_t{1} << candidates.size();
  if (threads == 0) threads = recommended_threads(combos);
  // Below ~4k subsets the thread spawn outweighs the work.
  if (combos < 4096) threads = 1;
  std::vector<MaskSearchBest> bests(threads);
  parallel_shards(
      combos, threads,
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        FastMvppEvaluator fast(eval, eval.closures());
        FastMaterializedSet m(fast.universe());
        MaskSearchBest& best = bests[shard];
        for (std::size_t mask = begin; mask < end; ++mask) {
          if (!admit(mask)) continue;
          m.clear();
          for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (mask & (std::size_t{1} << i)) m.set(candidates[i]);
          }
          const double cost = fast.total_cost(m);
          if (!best.valid || cost < best.cost) {
            best.cost = cost;
            best.mask = mask;
            best.valid = true;
          }
        }
      });
  MaskSearchBest overall;
  for (const MaskSearchBest& b : bests) {
    if (!b.valid) continue;
    if (!overall.valid || b.cost < overall.cost ||
        (b.cost == overall.cost && b.mask < overall.mask)) {
      overall = b;
    }
  }
  return overall;
}

MaterializedSet mask_to_set(const std::vector<NodeId>& candidates,
                            std::size_t mask) {
  MaterializedSet m;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (mask & (std::size_t{1} << i)) m.insert(candidates[i]);
  }
  return m;
}

}  // namespace

SelectionResult exhaustive_optimal(const MvppEvaluator& eval,
                                   std::size_t max_candidates,
                                   std::size_t threads) {
  const std::vector<NodeId> candidates = eval.graph().operation_ids();
  if (candidates.size() > max_candidates) {
    throw PlanError(str_cat("exhaustive search over ", candidates.size(),
                            " candidates exceeds the limit of ",
                            max_candidates));
  }
  MVD_TRACE_SPAN("selection", "exhaustive-optimal");
  if (counters_enabled()) {
    MetricsRegistry::global().counter("selection/exhaustive/masks")
        .add(static_cast<double>(std::size_t{1} << candidates.size()));
  }
  SelectionResult r;
  r.algorithm = "exhaustive-optimal";
  MaterializedSet best_set;
  if (has_fast_path(eval)) {
    const MaskSearchBest best =
        fast_mask_search(eval, candidates, threads, [](std::size_t) {
          return true;
        });
    best_set = mask_to_set(candidates, best.mask);
  } else {
    double best = std::numeric_limits<double>::infinity();
    const std::size_t combos = std::size_t{1} << candidates.size();
    for (std::size_t mask = 0; mask < combos; ++mask) {
      MaterializedSet m = mask_to_set(candidates, mask);
      const double cost = eval.total_cost(m);
      if (cost < best) {
        best = cost;
        best_set = std::move(m);
      }
    }
  }
  r.costs = eval.evaluate(best_set);
  r.materialized = std::move(best_set);
  return finish(eval, std::move(r));
}

namespace {

struct BnbContext {
  const MvppEvaluator* eval = nullptr;
  std::vector<NodeId> candidates;  // decision order
  MaterializedSet included;
  double best_cost = 0;
  MaterializedSet best_set;
  std::size_t nodes_visited = 0;
  std::size_t nodes_pruned = 0;
  Gauge* best_gauge = nullptr;  // per-improvement incumbent gauge

  // Lower bound for the current partial decision: included members are
  // fixed in, candidates[depth..] are free. The query side is bounded by
  // materializing every free candidate (query cost is monotone
  // non-increasing in M); each included view's maintenance is bounded by
  // recomputing against the fullest possible frontier (reuse-aware
  // maintenance is non-increasing in M; the no-reuse policy is constant,
  // for which this is exact).
  double lower_bound(std::size_t depth) const {
    MaterializedSet fullest = included;
    for (std::size_t i = depth; i < candidates.size(); ++i) {
      fullest.insert(candidates[i]);
    }
    double bound = eval->query_processing_cost(fullest);
    for (NodeId v : included) bound += eval->maintenance_cost(v, fullest);
    return bound;
  }

  void visit(std::size_t depth) {
    ++nodes_visited;
    if (lower_bound(depth) >= best_cost - 1e-9) {
      ++nodes_pruned;
      return;
    }
    if (depth == candidates.size()) {
      const double cost = eval->total_cost(included);
      if (cost < best_cost) {
        best_cost = cost;
        best_set = included;
        if (best_gauge != nullptr) best_gauge->set(best_cost);
      }
      return;
    }
    const NodeId v = candidates[depth];
    // Include-first: high-weight candidates usually belong in M, so the
    // incumbent improves early and prunes more.
    included.insert(v);
    visit(depth + 1);
    included.erase(v);
    visit(depth + 1);
  }
};

}  // namespace

SelectionResult branch_and_bound_optimal(const MvppEvaluator& eval,
                                         std::size_t max_candidates) {
  BnbContext ctx;
  ctx.eval = &eval;
  ctx.candidates = eval.graph().operation_ids();
  if (ctx.candidates.size() > max_candidates) {
    throw PlanError(str_cat("branch and bound over ", ctx.candidates.size(),
                            " candidates exceeds the limit of ",
                            max_candidates));
  }
  // Decide high-weight nodes first.
  std::sort(ctx.candidates.begin(), ctx.candidates.end(),
            [&](NodeId a, NodeId b) {
              const double wa = eval.weight(a);
              const double wb = eval.weight(b);
              if (wa != wb) return wa > wb;
              return a < b;
            });
  MVD_TRACE_SPAN("selection", "branch-and-bound");
  // Seed the incumbent with the greedy solution.
  ctx.best_set = greedy_incremental(eval).materialized;
  ctx.best_cost = eval.total_cost(ctx.best_set);
  ctx.best_gauge = best_total_gauge("branch-and-bound");
  ctx.visit(0);
  if (counters_enabled()) {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("selection/bnb/nodes_visited")
        .add(static_cast<double>(ctx.nodes_visited));
    reg.counter("selection/bnb/nodes_pruned")
        .add(static_cast<double>(ctx.nodes_pruned));
  }

  SelectionResult r;
  r.algorithm = "branch-and-bound";
  r.costs = eval.evaluate(ctx.best_set);
  r.materialized = std::move(ctx.best_set);
  r.trace.push_back(str_cat("visited ", ctx.nodes_visited,
                            " search nodes of ",
                            (std::size_t{1} << (ctx.candidates.size() + 1)) - 1,
                            " possible"));
  return finish(eval, std::move(r));
}

SelectionResult greedy_incremental(const MvppEvaluator& eval) {
  MVD_TRACE_SPAN("selection", "greedy-incremental");
  SelectionResult r;
  r.algorithm = "greedy-incremental";
  const std::vector<NodeId> candidates = eval.graph().operation_ids();
  std::unique_ptr<Prober> prober = make_prober(eval, {});
  Gauge* best_gauge = best_total_gauge("greedy-incremental");
  std::size_t probes = 0;
  double current = prober->total();
  while (true) {
    std::optional<NodeId> best_v;
    double best_cost = current;
    for (NodeId v : candidates) {
      if (prober->contains(v)) continue;
      const double cost = prober->probe_toggle(v);
      ++probes;
      if (cost < best_cost) {
        best_cost = cost;
        best_v = v;
      }
    }
    if (!best_v.has_value()) break;
    prober->commit_toggle(*best_v, best_cost);
    if (best_gauge != nullptr) best_gauge->set(best_cost);
    r.trace.push_back(eval.graph().node(*best_v).name + ": total " +
                      format_blocks(current) + " -> " +
                      format_blocks(best_cost));
    current = best_cost;
  }
  if (counters_enabled()) {
    MetricsRegistry::global().counter("selection/greedy/probes")
        .add(static_cast<double>(probes));
  }
  MaterializedSet m = prober->snapshot();
  r.costs = eval.evaluate(m);
  r.materialized = std::move(m);
  return finish(eval, std::move(r));
}

SelectionResult local_search(const MvppEvaluator& eval, MaterializedSet start,
                             std::size_t max_rounds) {
  MVD_TRACE_SPAN("selection", "local-search");
  SelectionResult r;
  r.algorithm = "local-search";
  eval.check_materializable(start);
  const std::vector<NodeId> candidates = eval.graph().operation_ids();

  std::unique_ptr<Prober> prober = make_prober(eval, std::move(start));
  Gauge* best_gauge = best_total_gauge("local-search");
  std::size_t rounds_taken = 0;
  double current_cost = prober->total();
  for (std::size_t round = 0; round < max_rounds; ++round) {
    enum class Move { kNone, kToggle, kSwap };
    Move best_move = Move::kNone;
    NodeId move_a = -1;
    NodeId move_b = -1;
    double best_cost = current_cost;
    std::string best_desc;

    auto consider = [&](Move move, NodeId a, NodeId b, double cost,
                        std::string desc) {
      if (cost < best_cost - 1e-9) {
        best_cost = cost;
        best_move = move;
        move_a = a;
        move_b = b;
        best_desc = std::move(desc);
      }
    };

    for (NodeId v : candidates) {
      const bool member = prober->contains(v);
      const double cost = prober->probe_toggle(v);
      consider(Move::kToggle, v, -1, cost,
               (member ? "drop " : "add ") + eval.graph().node(v).name);
    }
    // Swaps: replace one member with one non-member.
    const MaterializedSet current = prober->snapshot();
    for (NodeId out : current) {
      for (NodeId in : candidates) {
        if (current.contains(in)) continue;
        const double cost = prober->probe_swap(out, in);
        consider(Move::kSwap, out, in, cost,
                 "swap " + eval.graph().node(out).name + " -> " +
                     eval.graph().node(in).name);
      }
    }

    if (best_move == Move::kNone) break;  // local optimum
    if (best_move == Move::kToggle) {
      prober->commit_toggle(move_a, best_cost);
    } else {
      prober->commit_toggle(move_a, best_cost);
      prober->commit_toggle(move_b, best_cost);
    }
    ++rounds_taken;
    current_cost = best_cost;
    if (best_gauge != nullptr) best_gauge->set(best_cost);
    r.trace.push_back(best_desc + " -> " + format_blocks(best_cost));
  }
  if (counters_enabled()) {
    MetricsRegistry::global().counter("selection/local_search/rounds")
        .add(static_cast<double>(rounds_taken));
  }
  MaterializedSet m = prober->snapshot();
  r.costs = eval.evaluate(m);
  r.materialized = std::move(m);
  return finish(eval, std::move(r));
}

double total_view_blocks(const MvppGraph& graph, const MaterializedSet& m) {
  double blocks = 0;
  for (NodeId v : m) blocks += graph.node(v).blocks;
  return blocks;
}

SelectionResult budgeted_greedy(const MvppEvaluator& eval,
                                double budget_blocks) {
  if (!(budget_blocks >= 0)) throw PlanError("negative space budget");
  MVD_TRACE_SPAN("selection", "budgeted-greedy");
  SelectionResult r;
  r.algorithm = "budgeted-greedy";
  const std::vector<NodeId> candidates = eval.graph().operation_ids();

  std::unique_ptr<Prober> prober = make_prober(eval, {});
  Gauge* best_gauge = best_total_gauge("budgeted-greedy");
  std::size_t probes = 0;
  double used = 0;
  double current = prober->total();
  while (true) {
    std::optional<NodeId> best_v;
    double best_density = 0;
    double best_cost = current;
    for (NodeId v : candidates) {
      if (prober->contains(v)) continue;
      const double blocks = std::max(eval.graph().node(v).blocks, 1e-9);
      if (used + blocks > budget_blocks) continue;
      const double cost = prober->probe_toggle(v);
      ++probes;
      const double density = (current - cost) / blocks;
      if (cost < current && density > best_density) {
        best_density = density;
        best_v = v;
        best_cost = cost;
      }
    }
    if (!best_v.has_value()) break;
    prober->commit_toggle(*best_v, best_cost);
    used += eval.graph().node(*best_v).blocks;
    r.trace.push_back(eval.graph().node(*best_v).name + ": total " +
                      format_blocks(current) + " -> " +
                      format_blocks(best_cost) + ", space " +
                      format_blocks(used) + "/" +
                      format_blocks(budget_blocks));
    current = best_cost;
    if (best_gauge != nullptr) best_gauge->set(current);
  }
  if (counters_enabled()) {
    MetricsRegistry::global().counter("selection/budgeted_greedy/probes")
        .add(static_cast<double>(probes));
  }
  MaterializedSet m = prober->snapshot();
  r.costs = eval.evaluate(m);
  r.materialized = std::move(m);
  return finish(eval, std::move(r), budget_blocks);
}

SelectionResult budgeted_optimal(const MvppEvaluator& eval,
                                 double budget_blocks,
                                 std::size_t max_candidates,
                                 std::size_t threads) {
  if (!(budget_blocks >= 0)) throw PlanError("negative space budget");
  const std::vector<NodeId> candidates = eval.graph().operation_ids();
  if (candidates.size() > max_candidates) {
    throw PlanError(str_cat("budgeted search over ", candidates.size(),
                            " candidates exceeds the limit of ",
                            max_candidates));
  }
  MVD_TRACE_SPAN("selection", "budgeted-optimal");
  SelectionResult r;
  r.algorithm = "budgeted-optimal";
  if (counters_enabled()) {
    MetricsRegistry::global().counter("selection/budgeted_optimal/masks")
        .add(static_cast<double>(std::size_t{1} << candidates.size()));
  }
  MaterializedSet best_set;
  if (has_fast_path(eval)) {
    // Per-candidate block sizes, so the budget filter is a running sum
    // over mask bits instead of a set rebuild.
    std::vector<double> blocks_of(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      blocks_of[i] = eval.graph().node(candidates[i]).blocks;
    }
    const auto fits = [&](std::size_t mask) {
      double blocks = 0;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (mask & (std::size_t{1} << i)) {
          blocks += blocks_of[i];
          if (blocks > budget_blocks) return false;
        }
      }
      return true;
    };
    const MaskSearchBest best =
        fast_mask_search(eval, candidates, threads, fits);
    if (best.valid) best_set = mask_to_set(candidates, best.mask);
  } else {
    double best = std::numeric_limits<double>::infinity();
    const std::size_t combos = std::size_t{1} << candidates.size();
    for (std::size_t mask = 0; mask < combos; ++mask) {
      MaterializedSet m;
      double blocks = 0;
      bool fits = true;
      for (std::size_t i = 0; i < candidates.size() && fits; ++i) {
        if (mask & (std::size_t{1} << i)) {
          m.insert(candidates[i]);
          blocks += eval.graph().node(candidates[i]).blocks;
          fits = blocks <= budget_blocks;
        }
      }
      if (!fits) continue;
      const double cost = eval.total_cost(m);
      if (cost < best) {
        best = cost;
        best_set = std::move(m);
      }
    }
  }
  r.costs = eval.evaluate(best_set);
  r.materialized = std::move(best_set);
  return finish(eval, std::move(r), budget_blocks);
}

SelectionResult simulated_annealing(const MvppEvaluator& eval,
                                    AnnealingOptions options) {
  MVD_TRACE_SPAN("selection", "simulated-annealing");
  SelectionResult r;
  r.algorithm = "simulated-annealing";
  const std::vector<NodeId> candidates = eval.graph().operation_ids();
  if (candidates.empty()) {
    r.costs = eval.evaluate({});
    return finish(eval, std::move(r));
  }

  std::unique_ptr<Prober> prober =
      make_prober(eval, greedy_incremental(eval).materialized);
  Gauge* best_gauge = best_total_gauge("simulated-annealing");
  std::size_t accepted = 0;
  double current_cost = prober->total();
  MaterializedSet best = prober->snapshot();
  double best_cost = current_cost;

  Rng rng(options.seed);
  double temperature =
      std::max(options.initial_temperature * eval.total_cost({}), 1e-9);
  for (std::size_t it = 0; it < options.iterations; ++it) {
    const NodeId v = candidates[rng.index(candidates.size())];
    const double next_cost = prober->probe_toggle(v);
    const double delta = next_cost - current_cost;
    if (delta <= 0 || rng.uniform01() < std::exp(-delta / temperature)) {
      prober->commit_toggle(v, next_cost);
      ++accepted;
      current_cost = next_cost;
      if (current_cost < best_cost) {
        best = prober->snapshot();
        best_cost = current_cost;
        if (best_gauge != nullptr) best_gauge->set(best_cost);
      }
    }
    temperature *= options.cooling;
  }
  if (counters_enabled()) {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("selection/annealing/iterations")
        .add(static_cast<double>(options.iterations));
    reg.counter("selection/annealing/accepted")
        .add(static_cast<double>(accepted));
  }
  r.costs = eval.evaluate(best);
  r.materialized = std::move(best);
  return finish(eval, std::move(r));
}

}  // namespace mvd
