#include "src/mvpp/closures.hpp"

#include "src/obs/trace.hpp"

namespace mvd {

GraphClosures::GraphClosures(const MvppGraph& graph) {
  MVD_TRACE_SPAN("mvpp", "closures");
  if (counters_enabled()) {
    MetricsRegistry::global().counter("mvpp/closures/builds").increment();
  }
  const std::size_t n = graph.size();
  ancestors_.assign(n, NodeBitset(n));
  descendants_.assign(n, NodeBitset(n));
  queries_using_.assign(n, {});
  bases_under_.assign(n, {});
  query_ids_ = graph.query_ids();
  base_ids_ = graph.base_ids();
  operation_ids_ = graph.operation_ids();

  // Insertion order is topological (children precede parents), so one
  // forward sweep closes descendants and one backward sweep ancestors.
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = static_cast<NodeId>(i);
    NodeBitset& d = descendants_[i];
    for (NodeId c : graph.node(v).children) {
      d.set(c);
      d |= descendants_[static_cast<std::size_t>(c)];
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    const NodeId v = static_cast<NodeId>(i);
    NodeBitset& a = ancestors_[i];
    for (NodeId p : graph.node(v).parents) {
      a.set(p);
      a |= ancestors_[static_cast<std::size_t>(p)];
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (NodeId q : query_ids_) {
      if (ancestors_[i].test(q)) queries_using_[i].push_back(q);
    }
    for (NodeId b : base_ids_) {
      if (descendants_[i].test(b)) bases_under_[i].push_back(b);
    }
  }
}

}  // namespace mvd
