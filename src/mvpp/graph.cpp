#include "src/mvpp/graph.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"
#include "src/common/units.hpp"
#include "src/lint/lint.hpp"

namespace mvd {

std::string to_string(MvppNodeKind kind) {
  switch (kind) {
    case MvppNodeKind::kBase: return "base";
    case MvppNodeKind::kSelect: return "select";
    case MvppNodeKind::kProject: return "project";
    case MvppNodeKind::kJoin: return "join";
    case MvppNodeKind::kAggregate: return "aggregate";
    case MvppNodeKind::kQuery: return "query";
  }
  MVD_ASSERT(false);
  return {};
}

std::string MvppNode::label() const {
  switch (kind) {
    case MvppNodeKind::kBase:
      return name + " (fu=" + format_fixed(frequency, 2) + ")";
    case MvppNodeKind::kSelect:
      return name + ": select[" + predicate->to_string() + "]";
    case MvppNodeKind::kProject:
      return name + ": project[" + join(columns, ", ") + "]";
    case MvppNodeKind::kJoin:
      return name + ": join[" + predicate->to_string() + "]";
    case MvppNodeKind::kAggregate: {
      std::vector<std::string> parts;
      for (const AggSpec& a : aggregates) parts.push_back(a.to_string());
      return name + ": aggregate[" + join(columns, ", ") +
             (columns.empty() ? "" : " | ") + join(parts, ", ") + "]";
    }
    case MvppNodeKind::kQuery:
      return name + " (fq=" + format_fixed(frequency, 2) + ")";
  }
  MVD_ASSERT(false);
  return {};
}

const MvppNode& MvppGraph::node(NodeId id) const {
  MVD_ASSERT_MSG(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
                 "node id " << id << " out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

NodeId MvppGraph::dedup(const std::string& sig) const {
  auto it = by_signature_.find(sig);
  return it == by_signature_.end() ? -1 : it->second;
}

NodeId MvppGraph::add_node(MvppNode node) {
  node.id = static_cast<NodeId>(nodes_.size());
  for (NodeId c : node.children) {
    MVD_ASSERT_MSG(c >= 0 && static_cast<std::size_t>(c) < nodes_.size(),
                   "child id " << c << " out of range");
    nodes_[static_cast<std::size_t>(c)].parents.push_back(node.id);
  }
  if (!node.sig.empty()) by_signature_[node.sig] = node.id;
  nodes_.push_back(std::move(node));
  annotated_ = false;
  return nodes_.back().id;
}

NodeId MvppGraph::add_base(const std::string& relation, const Schema& schema,
                           double update_frequency) {
  const std::string sig = "scan(" + relation + ")";
  if (NodeId existing = dedup(sig); existing >= 0) return existing;
  MvppNode n;
  n.kind = MvppNodeKind::kBase;
  n.name = relation;
  n.relation = relation;
  n.frequency = update_frequency;
  n.sig = sig;
  const NodeId id = add_node(std::move(n));
  base_schemas_[id] = schema;
  return id;
}

NodeId MvppGraph::add_select(NodeId child, const ExprPtr& predicate) {
  MVD_ASSERT(predicate != nullptr);
  const std::string sig = "select[" + normalize(predicate)->to_string() +
                          "](" + node(child).sig + ")";
  if (NodeId existing = dedup(sig); existing >= 0) return existing;
  MvppNode n;
  n.kind = MvppNodeKind::kSelect;
  n.children = {child};
  n.predicate = predicate;
  n.sig = sig;
  return add_node(std::move(n));
}

NodeId MvppGraph::add_project(NodeId child,
                              const std::vector<std::string>& columns) {
  MVD_ASSERT(!columns.empty());
  std::vector<std::string> sorted = columns;
  std::sort(sorted.begin(), sorted.end());
  const std::string sig =
      "project[" + join(sorted, ",") + "](" + node(child).sig + ")";
  if (NodeId existing = dedup(sig); existing >= 0) return existing;
  MvppNode n;
  n.kind = MvppNodeKind::kProject;
  n.children = {child};
  n.columns = columns;
  n.sig = sig;
  return add_node(std::move(n));
}

NodeId MvppGraph::add_join(NodeId left, NodeId right,
                           const ExprPtr& predicate) {
  MVD_ASSERT(predicate != nullptr);
  std::string l = node(left).sig;
  std::string r = node(right).sig;
  NodeId cl = left;
  NodeId cr = right;
  if (r < l) {
    std::swap(l, r);
    std::swap(cl, cr);
  }
  const std::string sig =
      "join[" + normalize(predicate)->to_string() + "]{" + l + "," + r + "}";
  if (NodeId existing = dedup(sig); existing >= 0) return existing;
  MvppNode n;
  n.kind = MvppNodeKind::kJoin;
  n.children = {cl, cr};
  n.predicate = predicate;
  n.sig = sig;
  return add_node(std::move(n));
}

NodeId MvppGraph::add_aggregate(NodeId child,
                                std::vector<std::string> group_by,
                                std::vector<AggSpec> aggregates) {
  MVD_ASSERT(!aggregates.empty());
  std::vector<std::string> sorted_groups = group_by;
  std::sort(sorted_groups.begin(), sorted_groups.end());
  std::vector<std::string> sorted_aggs;
  for (const AggSpec& a : aggregates) sorted_aggs.push_back(a.to_string());
  std::sort(sorted_aggs.begin(), sorted_aggs.end());
  const std::string sig = "aggregate[" + join(sorted_groups, ",") + "|" +
                          join(sorted_aggs, ",") + "](" + node(child).sig +
                          ")";
  if (NodeId existing = dedup(sig); existing >= 0) return existing;
  MvppNode n;
  n.kind = MvppNodeKind::kAggregate;
  n.children = {child};
  n.columns = std::move(group_by);
  n.aggregates = std::move(aggregates);
  n.sig = sig;
  return add_node(std::move(n));
}

NodeId MvppGraph::add_query(const std::string& name, double frequency,
                            NodeId child) {
  if (find_by_name(name) >= 0) {
    throw PlanError("duplicate query name '" + name + "' in MVPP");
  }
  MvppNode n;
  n.kind = MvppNodeKind::kQuery;
  n.name = name;
  n.frequency = frequency;
  n.children = {child};
  // No signature: query roots are intentionally never merged.
  return add_node(std::move(n));
}

std::vector<NodeId> MvppGraph::base_ids() const {
  std::vector<NodeId> out;
  for (const MvppNode& n : nodes_) {
    if (n.kind == MvppNodeKind::kBase) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> MvppGraph::query_ids() const {
  std::vector<NodeId> out;
  for (const MvppNode& n : nodes_) {
    if (n.kind == MvppNodeKind::kQuery) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> MvppGraph::operation_ids() const {
  std::vector<NodeId> out;
  for (const MvppNode& n : nodes_) {
    if (n.is_operation()) out.push_back(n.id);
  }
  return out;
}

std::set<NodeId> MvppGraph::ancestors(NodeId id) const {
  std::set<NodeId> out;
  std::vector<NodeId> stack(node(id).parents.begin(), node(id).parents.end());
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    if (!out.insert(v).second) continue;
    const MvppNode& n = node(v);
    stack.insert(stack.end(), n.parents.begin(), n.parents.end());
  }
  return out;
}

std::set<NodeId> MvppGraph::descendants(NodeId id) const {
  std::set<NodeId> out;
  std::vector<NodeId> stack(node(id).children.begin(),
                            node(id).children.end());
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    if (!out.insert(v).second) continue;
    const MvppNode& n = node(v);
    stack.insert(stack.end(), n.children.begin(), n.children.end());
  }
  return out;
}

std::vector<NodeId> MvppGraph::queries_using(NodeId id) const {
  std::vector<NodeId> out;
  const std::set<NodeId> anc = ancestors(id);
  for (NodeId q : query_ids()) {
    if (anc.contains(q)) out.push_back(q);
  }
  return out;
}

std::vector<NodeId> MvppGraph::bases_under(NodeId id) const {
  std::vector<NodeId> out;
  const std::set<NodeId> desc = descendants(id);
  for (NodeId b : base_ids()) {
    if (desc.contains(b)) out.push_back(b);
  }
  return out;
}

void MvppGraph::set_name(NodeId id, const std::string& name) {
  if (name.empty()) throw PlanError("node name must not be empty");
  if (!node(id).is_operation()) {
    throw PlanError("only operation nodes can be renamed");
  }
  const NodeId existing = find_by_name(name);
  if (existing >= 0 && existing != id) {
    throw PlanError("duplicate node name '" + name + "'");
  }
  nodes_[static_cast<std::size_t>(id)].name = name;
}

void MvppGraph::set_frequency(NodeId id, double frequency) {
  if (node(id).is_operation()) {
    throw PlanError("only query roots and base leaves carry frequencies");
  }
  if (!(frequency >= 0)) throw PlanError("negative frequency");
  nodes_[static_cast<std::size_t>(id)].frequency = frequency;
}

NodeId MvppGraph::find_by_name(const std::string& name) const {
  for (const MvppNode& n : nodes_) {
    if (n.name == name) return n.id;
  }
  return -1;
}

void MvppGraph::annotate(const CostModel& cost_model) {
  // Assign tmpN names to unnamed operation nodes in topological
  // (= insertion) order.
  int next_tmp = 1;
  for (MvppNode& n : nodes_) {
    if (n.is_operation() && n.name.empty()) {
      std::string name;
      do {
        name = "tmp" + std::to_string(next_tmp++);
      } while (find_by_name(name) >= 0);
      n.name = name;
    }
  }

  for (MvppNode& n : nodes_) {
    switch (n.kind) {
      case MvppNodeKind::kBase:
        n.expr = make_scan(cost_model.catalog(), n.relation);
        break;
      case MvppNodeKind::kSelect:
        n.expr = make_select(nodes_[static_cast<std::size_t>(n.children[0])].expr,
                             n.predicate);
        break;
      case MvppNodeKind::kProject:
        n.expr = make_project(
            nodes_[static_cast<std::size_t>(n.children[0])].expr, n.columns);
        break;
      case MvppNodeKind::kJoin:
        n.expr = make_join(nodes_[static_cast<std::size_t>(n.children[0])].expr,
                           nodes_[static_cast<std::size_t>(n.children[1])].expr,
                           n.predicate);
        break;
      case MvppNodeKind::kAggregate:
        n.expr = make_aggregate(
            nodes_[static_cast<std::size_t>(n.children[0])].expr, n.columns,
            n.aggregates);
        break;
      case MvppNodeKind::kQuery:
        n.expr = nodes_[static_cast<std::size_t>(n.children[0])].expr;
        break;
    }
    const NodeEstimate est = cost_model.estimate(n.expr);
    n.rows = est.rows;
    n.blocks = est.blocks;
    if (n.kind == MvppNodeKind::kQuery) {
      n.op_cost = 0;
      n.full_cost = nodes_[static_cast<std::size_t>(n.children[0])].full_cost;
    } else if (n.kind == MvppNodeKind::kBase) {
      n.op_cost = 0;
      n.full_cost = 0;  // leaves: Ca = 0 per the paper's definition
    } else {
      n.op_cost = cost_model.op_cost(n.expr);
      double total = n.op_cost;
      for (NodeId c : n.children) {
        total += nodes_[static_cast<std::size_t>(c)].full_cost;
      }
      n.full_cost = total;
    }
  }
  annotated_ = true;
  validate();
  {
    LintContext ctx;
    ctx.graph = this;
    ctx.cost_model = &cost_model;
    lint_stage_hook("annotate", ctx);
  }
}

void MvppGraph::validate() const {
  // The invariants live in the structure-phase mvlint rules (src/lint);
  // this is the throwing wrapper internal callers rely on.
  const LintReport report = lint_structure(*this);
  if (report.has_errors()) {
    throw AssertionError("MVPP structural invariants violated:\n" +
                         report.filtered(Severity::kError).render_text());
  }
}

namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string MvppGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph mvpp {\n  rankdir=BT;\n";
  for (const MvppNode& n : nodes_) {
    std::string shape = "ellipse";
    if (n.kind == MvppNodeKind::kBase) shape = "box";
    if (n.kind == MvppNodeKind::kQuery) shape = "doublecircle";
    std::string label = n.label();
    if (annotated_ && n.is_operation()) {
      label += "\\nCa=" + format_blocks(n.full_cost) + " blk=" +
               format_blocks(n.blocks);
    }
    os << "  n" << n.id << " [shape=" << shape << ", label=\""
       << dot_escape(label) << "\"];\n";
  }
  for (const MvppNode& n : nodes_) {
    for (NodeId c : n.children) {
      os << "  n" << c << " -> n" << n.id << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string MvppGraph::to_text() const {
  std::ostringstream os;
  std::set<NodeId> printed;
  // Recursive printer; nodes already expanded elsewhere are referenced by
  // name only (the DAG is a tree with sharing).
  auto render = [&](auto&& self, NodeId id, int depth) -> void {
    const MvppNode& n = node(id);
    os << std::string(static_cast<std::size_t>(depth) * 2, ' ');
    os << n.label();
    if (annotated_ && n.is_operation()) {
      os << "  [rows=" << format_blocks(n.rows)
         << " blocks=" << format_blocks(n.blocks)
         << " Ca=" << format_blocks(n.full_cost) << "]";
    }
    if (printed.contains(id) && !n.children.empty()) {
      os << "  (shared, see above)\n";
      return;
    }
    os << '\n';
    printed.insert(id);
    for (NodeId c : n.children) self(self, c, depth + 1);
  };
  for (NodeId q : query_ids()) render(render, q, 0);
  return os.str();
}

}  // namespace mvd
