#include "src/mvpp/evaluation.hpp"

#include <algorithm>
#include <map>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace mvd {

MvppEvaluator::MvppEvaluator(const MvppGraph& graph, MaintenancePolicy policy,
                             IndexPolicy index)
    : graph_(&graph),
      policy_(policy),
      index_(index),
      closures_(std::make_shared<const GraphClosures>(graph)) {
  MVD_ASSERT_MSG(graph.annotated(),
                 "MvppGraph must be annotate()d before evaluation");
}

double MvppEvaluator::op_contribution(const MvppNode& n,
                                      const MaterializedSet& m) const {
  if (!index_.enabled) return n.op_cost;
  const MvppGraph& g = *graph_;
  switch (n.kind) {
    case MvppNodeKind::kSelect: {
      // An equality selection over a stored (indexed) view fetches only
      // its matching blocks.
      const NodeId c = n.children[0];
      if (m.contains(c) && is_pure_equality(n.predicate)) {
        return std::max(1.0, n.blocks);
      }
      return n.op_cost;
    }
    case MvppNodeKind::kJoin: {
      // Index nested loop with a stored view as the inner side, when it
      // beats the block nested loop.
      double best = n.op_cost;
      for (int side = 0; side < 2; ++side) {
        const NodeId inner = n.children[static_cast<std::size_t>(side)];
        const NodeId outer = n.children[static_cast<std::size_t>(1 - side)];
        if (!m.contains(inner)) continue;
        const double probes =
            g.node(outer).rows * index_.probe_cost_blocks;
        best = std::min(best, g.node(outer).blocks + probes);
      }
      return best;
    }
    default:
      return n.op_cost;
  }
}

namespace {

// Flat-array memo for one produce_cost call: values indexed by NodeId,
// validity tracked separately. Stack-free of std::map rebalancing; a
// fresh instance per call keeps the method const and thread-safe.
struct ProduceMemo {
  explicit ProduceMemo(std::size_t n) : value(n, 0.0), known(n, 0) {}
  std::vector<double> value;
  std::vector<char> known;
};

double produce_walk(const MvppEvaluator& eval, NodeId v,
                    const MaterializedSet& m, ProduceMemo& memo) {
  const std::size_t i = static_cast<std::size_t>(v);
  if (memo.known[i]) return memo.value[i];
  const MvppGraph& g = eval.graph();
  const MvppNode& n = g.node(v);
  MVD_ASSERT_MSG(n.kind != MvppNodeKind::kQuery,
                 "produce_cost over a query root; use its child");
  double cost = 0;
  if (n.kind != MvppNodeKind::kBase) {
    cost = eval.op_contribution(n, m);
    for (NodeId c : n.children) {
      const MvppNode& child = g.node(c);
      const bool stored = child.kind == MvppNodeKind::kBase || m.contains(c);
      if (!stored) cost += produce_walk(eval, c, m, memo);
    }
  }
  memo.known[i] = 1;
  memo.value[i] = cost;
  return cost;
}

}  // namespace

double MvppEvaluator::produce_cost(NodeId v, const MaterializedSet& m) const {
  ProduceMemo memo(graph_->size());
  return produce_walk(*this, v, m, memo);
}

double MvppEvaluator::answer_cost(NodeId query, const MaterializedSet& m) const {
  const MvppNode& q = graph_->node(query);
  MVD_ASSERT(q.kind == MvppNodeKind::kQuery);
  const NodeId result = q.children[0];
  if (m.contains(result)) return graph_->node(result).blocks;
  return produce_cost(result, m);
}

double MvppEvaluator::query_processing_cost(const MaterializedSet& m) const {
  double total = 0;
  for (NodeId q : closures_->query_ids()) {
    total += graph_->node(q).frequency * answer_cost(q, m);
  }
  return total;
}

double MvppEvaluator::update_factor(NodeId v) const {
  // Frequencies are read live (set_frequency what-ifs stay valid); only
  // the Iv membership comes from the precomputed closure, in the same
  // ascending order as the legacy bases_under() walk.
  double factor = 0;
  for (NodeId b : closures_->bases_under(v)) {
    const double fu = graph_->node(b).frequency;
    if (policy_.mode == MaintenancePolicy::Mode::kBatchRecompute) {
      factor = std::max(factor, fu);
    } else {
      factor += fu;
    }
  }
  return factor;
}

double MvppEvaluator::maintenance_cost(NodeId v, const MaterializedSet& m) const {
  const MvppNode& n = graph_->node(v);
  MVD_ASSERT_MSG(n.is_operation(), "only operation nodes can be maintained");
  const double recompute =
      policy_.reuse_materialized ? produce_cost(v, m) : n.full_cost;
  return update_factor(v) * recompute;
}

double MvppEvaluator::total_maintenance_cost(const MaterializedSet& m) const {
  double total = 0;
  for (NodeId v : m) total += maintenance_cost(v, m);
  return total;
}

MvppCosts MvppEvaluator::evaluate(const MaterializedSet& m) const {
  check_materializable(m);
  return MvppCosts{query_processing_cost(m), total_maintenance_cost(m)};
}

double MvppEvaluator::total_cost(const MaterializedSet& m) const {
  return evaluate(m).total();
}

double MvppEvaluator::weight(NodeId v) const {
  const MvppNode& n = graph_->node(v);
  MVD_ASSERT(n.is_operation());
  double access_saving = 0;
  for (NodeId q : closures_->queries_using(v)) {
    access_saving += graph_->node(q).frequency * n.full_cost;
  }
  return access_saving - update_factor(v) * n.full_cost;
}

void MvppEvaluator::check_materializable(const MaterializedSet& m) const {
  for (NodeId v : m) {
    if (!graph_->node(v).is_operation()) {
      throw PlanError("node '" + graph_->node(v).name +
                      "' is not a materializable operation node");
    }
  }
}

std::string to_string(const MvppGraph& graph, const MaterializedSet& m) {
  std::vector<std::string> names;
  for (NodeId v : m) names.push_back(graph.node(v).name);
  std::sort(names.begin(), names.end());
  return "{" + join(names, ", ") + "}";
}

}  // namespace mvd
