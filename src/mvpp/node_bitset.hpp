// Dense bitset over NodeId. MVPP node ids are small dense ints assigned
// by insertion order, so set membership packs into one machine word per
// 64 nodes: O(1) test/insert, word-wise union/intersection, and copies
// that are a handful of uint64 moves instead of a red-black-tree clone.
// This is the representation behind FastMaterializedSet and the
// precomputed graph closures (see fast_eval.hpp).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "src/common/assert.hpp"

namespace mvd {

class NodeBitset {
 public:
  NodeBitset() = default;
  /// A bitset able to hold ids in [0, universe).
  explicit NodeBitset(std::size_t universe)
      : universe_(universe), words_((universe + 63) / 64, 0) {}

  std::size_t universe() const { return universe_; }

  bool test(int id) const {
    MVD_ASSERT(in_range(id));
    return (words_[word(id)] >> bit(id)) & 1u;
  }

  void set(int id) {
    MVD_ASSERT(in_range(id));
    words_[word(id)] |= mask(id);
  }

  void reset(int id) {
    MVD_ASSERT(in_range(id));
    words_[word(id)] &= ~mask(id);
  }

  void toggle(int id) {
    MVD_ASSERT(in_range(id));
    words_[word(id)] ^= mask(id);
  }

  void clear() {
    for (std::uint64_t& w : words_) w = 0;
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  bool empty() const {
    for (std::uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// True when the intersection with `other` is non-empty.
  bool intersects(const NodeBitset& other) const {
    const std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }

  NodeBitset& operator|=(const NodeBitset& other) {
    MVD_ASSERT(universe_ == other.universe_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  NodeBitset& operator&=(const NodeBitset& other) {
    MVD_ASSERT(universe_ == other.universe_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  bool operator==(const NodeBitset& other) const {
    return universe_ == other.universe_ && words_ == other.words_;
  }

  /// Visit members in ascending id order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int b = std::countr_zero(w);
        fn(static_cast<int>(wi * 64) + b);
        w &= w - 1;
      }
    }
  }

  /// Members as a sorted vector.
  std::vector<int> to_vector() const {
    std::vector<int> out;
    out.reserve(count());
    for_each([&](int id) { out.push_back(id); });
    return out;
  }

  /// Lexicographic order over the ascending id sequences — the
  /// deterministic tie-break used by the parallel search reductions.
  /// E.g. {1,3,5} < {1,5} (3 < 5 at the first difference) and
  /// {1} < {1,5} (proper prefix).
  static bool lex_less(const NodeBitset& a, const NodeBitset& b) {
    MVD_ASSERT(a.universe_ == b.universe_);
    for (std::size_t i = 0; i < a.words_.size(); ++i) {
      const std::uint64_t wa = a.words_[i];
      const std::uint64_t wb = b.words_[i];
      if (wa == wb) continue;
      // d: the lowest id present in exactly one of the two sets. Below d
      // the sequences agree. The set holding d compares smaller when the
      // other still has members beyond d; otherwise the other is a
      // proper prefix and compares smaller.
      const int d = std::countr_zero(wa ^ wb);
      const bool in_a = (wa >> d) & 1u;
      const NodeBitset& other = in_a ? b : a;
      const std::uint64_t other_high =
          (in_a ? wb : wa) & ~((std::uint64_t{2} << d) - 1);
      bool other_nonempty_beyond = other_high != 0;
      for (std::size_t j = i + 1; !other_nonempty_beyond && j < a.words_.size();
           ++j) {
        other_nonempty_beyond = other.words_[j] != 0;
      }
      return in_a == other_nonempty_beyond;
    }
    return false;  // equal
  }

 private:
  bool in_range(int id) const {
    return id >= 0 && static_cast<std::size_t>(id) < universe_;
  }
  static std::size_t word(int id) { return static_cast<std::size_t>(id) / 64; }
  static int bit(int id) { return id % 64; }
  static std::uint64_t mask(int id) { return std::uint64_t{1} << bit(id); }

  std::size_t universe_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace mvd
