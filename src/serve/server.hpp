// mvserve — the warehouse's serving front door.
//
// MvServer wraps a deployed design (catalog + MVPP + materialized set +
// data) behind a thread-safe serve() that accepts arbitrary SQL in the
// parser's subset, rewrites it onto the cheapest covering materialized
// view (src/optimizer/view_rewrite) or falls back to the canonical
// base-table plan, and executes on any engine.
//
// Concurrency model — snapshot/epoch, in the ArcadeDB materialized-view
// style:
//   * The server publishes an immutable ServeSnapshot: an epoch number,
//     a shared const Database (base tables + stored views), and the view
//     registry with each view's VALID / STALE / BUILDING status.
//   * Readers pin the current snapshot (one shared_ptr copy under the
//     snapshot mutex) and run entirely against it; the pinning Executor
//     overload keeps the data alive even when the server swaps mid-query.
//   * Writers (ingest / refresh) are serialized by a writer mutex. They
//     deep-copy the current database (Database copy = value semantics),
//     mutate the staging copy, and publish a new snapshot in one swap.
//     A reader therefore sees pre-state or post-state, never a mix.
//   * ingest() applies an update batch to one base relation, captures its
//     signed delta for later incremental refresh, and marks every view
//     over that relation STALE — the matcher skips STALE views, so
//     queries fall back to the (already updated) base tables of the same
//     snapshot.
//   * refresh() = begin_refresh() (publish STALE views as BUILDING) +
//     finish_refresh() (rebuild them on the staging copy — incrementally
//     from the captured deltas or by recompute — then publish them
//     VALID). update_and_refresh() does batch + rebuild with one
//     publish, for writers that must never expose an intermediate state.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/exec/executor.hpp"
#include "src/maintenance/refresh.hpp"
#include "src/maintenance/update_stream.hpp"
#include "src/obs/workload.hpp"
#include "src/sql/parser.hpp"
#include "src/warehouse/deployed.hpp"
#include "src/warehouse/designer.hpp"

namespace mvd {

/// Rewriting switch from MVD_SERVE_REWRITE: truthy/unset = on, falsy
/// ("0"/"false"/"off") = every query takes the base-table path.
bool default_serve_rewrite();

/// Workload-observatory switch from MVD_SERVE_OBSERVE: truthy/unset =
/// on, falsy = the server records nothing and journals nothing.
bool default_serve_observe();

struct ServeOptions {
  ExecMode mode = default_exec_mode();
  std::size_t threads = default_exec_threads();
  bool rewrite = default_serve_rewrite();
  bool observe = default_serve_observe();
};

/// Which answer path serve() may take. kAuto tries the rewriter first;
/// the forced paths exist for differential tests (run both on one pinned
/// snapshot and compare) and for measuring the rewrite win.
enum class ServePath { kAuto, kViewOnly, kBaseOnly };

/// One immutable published state of the warehouse.
struct ServeSnapshot {
  std::uint64_t epoch = 0;
  std::shared_ptr<const Database> db;
  DeployedViewRegistry registry;
};

struct ServeResult {
  Table table{Schema{}};
  /// True when a materialized view answered; view names it.
  bool rewritten = false;
  std::string view;
  /// The matcher's refusal reason on the fallback path (best effort;
  /// the flattened form of `refusals`).
  std::string refusal;
  /// Structured per-view refusal reasons on the fallback path.
  std::vector<ServeRefusal> refusals;
  /// Engine that executed the answer plan ("row" | "vec" | "fused").
  std::string engine;
  std::uint64_t epoch = 0;
  ExecStats stats;
  /// Wall-clock execution time of the answer plan (parse/match excluded).
  double latency_ms = 0;
};

/// Evidence that one query was answered from one view — what the mvlint
/// serve/rewrite-consistent rule re-derives (implies(query_pred,
/// view_pred) over joint must hold for every record).
struct RewriteRecord {
  std::string query;  // QuerySpec name
  std::string view;
  ExprPtr query_pred;
  ExprPtr view_pred;
  Schema joint;
};

class MvServer {
 public:
  /// `db` holds the base tables; chosen views are deployed into the first
  /// snapshot (reusing stored tables already present in `db`, computing
  /// the missing ones with their refresh plans).
  MvServer(Catalog catalog, DesignResult design, const Database& db,
           ServeOptions options = {});

  // ---- Read path (thread-safe, lock-free after the snapshot pin) ----

  /// Parse, bind, rewrite-or-fallback, execute. Throws ParseError /
  /// BindError on bad SQL, ExecError on a forced kViewOnly miss.
  ServeResult serve(const std::string& sql, ServePath path = ServePath::kAuto);
  ServeResult serve(const QuerySpec& query, ServePath path = ServePath::kAuto);

  /// The current snapshot (readers may hold it as long as they like).
  std::shared_ptr<const ServeSnapshot> snapshot() const;

  /// serve() against an explicitly pinned snapshot — the differential
  /// harness runs kViewOnly and kBaseOnly against one snapshot and
  /// compares.
  ServeResult serve_on(const std::shared_ptr<const ServeSnapshot>& snap,
                       const QuerySpec& query,
                       ServePath path = ServePath::kAuto) const;

  // ---- Write path (writers serialize; each publish is atomic) ----

  /// Apply one synthetic update batch to `relation`, capture its delta,
  /// mark dependent views STALE, publish. Returns the new epoch.
  std::uint64_t ingest(const std::string& relation,
                       const UpdateStreamOptions& options, Rng& rng);

  /// Publish every non-VALID view as BUILDING (content unchanged).
  std::uint64_t begin_refresh();

  /// Rebuild every non-VALID view on a staging copy (kIncremental
  /// consumes the captured deltas, kRecompute re-runs refresh plans),
  /// publish them VALID. Returns the new epoch.
  std::uint64_t finish_refresh(RefreshMode mode = default_refresh_mode());

  /// begin + finish (two publishes; queries between them fall back).
  std::uint64_t refresh(RefreshMode mode = default_refresh_mode());

  /// Batch + rebuild with a single publish: readers see the old state or
  /// the fully refreshed one, never the gap. The writer loop of the
  /// concurrency tests.
  std::uint64_t update_and_refresh(const std::string& relation,
                                   const UpdateStreamOptions& options,
                                   Rng& rng,
                                   RefreshMode mode = default_refresh_mode());

  // ---- Introspection ----

  const Catalog& catalog() const { return catalog_; }
  const ServeOptions& options() const { return options_; }
  std::uint64_t epoch() const;
  ViewStatus status(const std::string& view) const;

  /// All rewrite evidence accumulated so far (thread-safe copy).
  std::vector<RewriteRecord> rewrite_log() const;

  /// The workload observatory recording this server's traffic (null when
  /// options.observe is off). Seeded at construction with the declared
  /// fq/fu catalog annotations; its journal has a file sink when
  /// MVD_JOURNAL is set.
  WorkloadObservatory* observatory() const { return observatory_.get(); }

 private:
  void publish(std::shared_ptr<const ServeSnapshot> next);
  /// Rebuild every pending view of `registry` inside `db` (incremental
  /// from `deltas` when possible, recompute otherwise) and mark them
  /// VALID. Caller holds writer_mutex_.
  void rebuild_pending(Database& db, DeployedViewRegistry& registry,
                       RefreshMode mode, const DeltaSet& deltas) const;

  Catalog catalog_;
  DesignResult design_;
  ServeOptions options_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const ServeSnapshot> snapshot_;

  /// Serializes ingest/refresh; pending_deltas_ is guarded by it.
  std::mutex writer_mutex_;
  DeltaSet pending_deltas_;

  mutable std::mutex log_mutex_;
  /// Mutable: serve_on is logically const (it only reads the snapshot)
  /// but records its rewrite evidence.
  mutable std::vector<RewriteRecord> rewrite_log_;

  /// Thread-safe itself; serve_on records through the pointer.
  std::unique_ptr<WorkloadObservatory> observatory_;
};

}  // namespace mvd
