#include "src/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <set>
#include <utility>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/mvpp/rewrite.hpp"
#include "src/obs/publish.hpp"

namespace mvd {

bool default_serve_rewrite() {
  if (const char* env = std::getenv("MVD_SERVE_REWRITE")) {
    const std::string f(env);
    if (f == "0" || f == "false" || f == "off") return false;
  }
  return true;
}

bool default_serve_observe() {
  if (const char* env = std::getenv("MVD_SERVE_OBSERVE")) {
    const std::string f(env);
    if (f == "0" || f == "false" || f == "off") return false;
  }
  return true;
}

MvServer::MvServer(Catalog catalog, DesignResult design, const Database& db,
                   ServeOptions options)
    : catalog_(std::move(catalog)),
      design_(std::move(design)),
      options_(options) {
  const MvppGraph& graph = design_.graph();
  const MaterializedSet& m = design_.selection.materialized;

  // Deploy any chosen view the caller has not already stored. NodeId
  // order is topological, so refresh plans read stored descendants.
  Database deployed = db;
  for (const NodeId id : m) {
    const MvppNode& node = graph.node(id);
    if (deployed.has_table(node.name)) continue;
    const Executor exec(deployed, options_.mode, options_.threads);
    deployed.put_table(node.name, exec.run(refresh_plan(graph, id, m)));
  }

  auto first = std::make_shared<ServeSnapshot>();
  first->epoch = 0;
  first->db = std::make_shared<const Database>(std::move(deployed));
  first->registry = DeployedViewRegistry(graph, m, *first->db);
  snapshot_ = std::move(first);

  if (options_.observe) {
    observatory_ = std::make_unique<WorkloadObservatory>();
    // The journal picks up MVD_JOURNAL as its file sink; the kOpen event
    // plus the declarations below make it replay self-contained.
    observatory_->attach_journal(std::make_shared<EventJournal>());
    for (const NodeId q : graph.query_ids()) {
      const MvppNode& node = graph.node(q);
      observatory_->declare_query(node.name, node.frequency);
    }
    for (const std::string& rel : catalog_.relation_names()) {
      observatory_->declare_update(rel, catalog_.update_frequency(rel));
    }
  }
}

std::shared_ptr<const ServeSnapshot> MvServer::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

void MvServer::publish(std::shared_ptr<const ServeSnapshot> next) {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(next);
}

ServeResult MvServer::serve(const std::string& sql, ServePath path) {
  return serve(parse_adhoc(catalog_, sql), path);
}

ServeResult MvServer::serve(const QuerySpec& query, ServePath path) {
  return serve_on(snapshot(), query, path);
}

ServeResult MvServer::serve_on(const std::shared_ptr<const ServeSnapshot>& snap,
                               const QuerySpec& query, ServePath path) const {
  MVD_ASSERT(snap != nullptr && snap->db != nullptr);
  ServeResult out;
  out.epoch = snap->epoch;

  // The forced kViewOnly path overrides the global rewrite switch — it
  // exists to assert coverage, not to measure the default configuration.
  const bool try_rewrite =
      path == ServePath::kViewOnly ||
      (path == ServePath::kAuto && options_.rewrite);

  std::optional<ViewMatch> best;
  std::string refusals;
  if (try_rewrite) {
    for (const ViewDef& v : snap->registry.matchable()) {
      std::string why;
      std::optional<ViewMatch> match =
          match_query_to_view(query, v, catalog_, &why);
      if (match.has_value()) {
        const bool better =
            !best.has_value() || match->stored_blocks < best->stored_blocks ||
            (match->stored_blocks == best->stored_blocks &&
             match->view < best->view);
        if (better) best = std::move(match);
      } else {
        if (!refusals.empty()) refusals += "; ";
        refusals += v.name + ": " + why;
        out.refusals.push_back({v.name, why});
      }
    }
  } else if (path == ServePath::kBaseOnly) {
    refusals = "base-only path forced";
  } else {
    refusals = "rewriting disabled";
  }

  if (path == ServePath::kViewOnly && !best.has_value()) {
    throw ExecError("no materialized view covers query '" + query.name() +
                    "'" + (refusals.empty() ? "" : " (" + refusals + ")"));
  }

  PlanPtr plan;
  if (best.has_value()) {
    out.rewritten = true;
    out.view = best->view;
    out.refusals.clear();
    plan = best->plan;
  } else {
    out.refusal = refusals.empty() ? "no deployed views" : refusals;
    plan = canonical_plan(catalog_, query);
  }
  out.engine = exec_mode_name(options_.mode);

  const Executor exec(snap->db, options_.mode, options_.threads);
  const auto t0 = std::chrono::steady_clock::now();
  out.table = exec.run(plan, &out.stats);
  const auto t1 = std::chrono::steady_clock::now();
  out.latency_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  if (out.rewritten) {
    std::lock_guard<std::mutex> lock(log_mutex_);
    rewrite_log_.push_back({query.name(), best->view, best->query_pred,
                            best->view_pred, best->joint});
  }
  publish_serve_result(out.rewritten, out.view, out.latency_ms, out.engine,
                       out.refusals);

  if (observatory_ != nullptr) {
    JournalEvent e;
    e.kind = EventKind::kServe;
    e.epoch = snap->epoch;
    e.query = query.name();
    e.fingerprint = query_fingerprint(query);
    e.rewritten = out.rewritten;
    e.view = out.view;
    e.engine = out.engine;
    e.latency_ms = out.latency_ms;
    e.refusals = out.refusals;
    if (!out.rewritten) {
      // Stale coverage this fallback could have used: non-VALID matchable
      // views over exactly the query's relation set.
      const std::set<std::string> query_rels(query.relations().begin(),
                                             query.relations().end());
      for (const DeployedView& v : snap->registry.views()) {
        if (v.status != ViewStatus::kValid && v.def.matchable &&
            v.def.relations == query_rels) {
          e.stale_views.push_back(v.def.name);
        }
      }
    }
    observatory_->record(std::move(e));
  }
  return out;
}

std::uint64_t MvServer::ingest(const std::string& relation,
                               const UpdateStreamOptions& options, Rng& rng) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const std::shared_ptr<const ServeSnapshot> cur = snapshot();

  auto next = std::make_shared<ServeSnapshot>();
  next->epoch = cur->epoch + 1;
  Database staging = *cur->db;
  const auto before = pending_deltas_.find(relation);
  const std::size_t rows0 =
      before != pending_deltas_.end() ? before->second.row_count() : 0;
  apply_update_batch(staging, relation, options, rng, &pending_deltas_);
  const std::size_t rows1 = pending_deltas_.at(relation).row_count();
  next->registry = cur->registry;
  const std::vector<std::string> marked = next->registry.mark_stale(relation);
  next->db = std::make_shared<const Database>(std::move(staging));
  publish(next);
  if (observatory_ != nullptr) {
    JournalEvent e;
    e.kind = EventKind::kIngest;
    e.epoch = next->epoch;
    e.relation = relation;
    e.delta_rows = static_cast<double>(rows1 - rows0);
    e.marked_stale = marked;
    observatory_->record(std::move(e));
    observatory_->publish_gauges();
  }
  return next->epoch;
}

std::uint64_t MvServer::begin_refresh() {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const std::shared_ptr<const ServeSnapshot> cur = snapshot();

  // Content is unchanged, so the new snapshot shares the database; only
  // the registry advances (STALE -> BUILDING).
  auto next = std::make_shared<ServeSnapshot>(*cur);
  next->epoch = cur->epoch + 1;
  for (const std::string& name : next->registry.pending()) {
    next->registry.set_status(name, ViewStatus::kBuilding);
  }
  publish(next);
  return next->epoch;
}

std::uint64_t MvServer::finish_refresh(RefreshMode mode) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const std::shared_ptr<const ServeSnapshot> cur = snapshot();

  auto next = std::make_shared<ServeSnapshot>();
  next->epoch = cur->epoch + 1;
  Database staging = *cur->db;
  DeployedViewRegistry registry = cur->registry;
  const std::vector<std::string> pending = registry.pending();
  const DeltaSet deltas = std::exchange(pending_deltas_, DeltaSet{});
  rebuild_pending(staging, registry, mode, deltas);
  next->db = std::make_shared<const Database>(std::move(staging));
  next->registry = std::move(registry);
  publish(next);
  if (observatory_ != nullptr && !pending.empty()) {
    JournalEvent e;
    e.kind = EventKind::kRefresh;
    e.epoch = next->epoch;
    e.refreshed = pending;
    e.mode = to_string(mode);
    observatory_->record(std::move(e));
    observatory_->publish_gauges();
  }
  return next->epoch;
}

std::uint64_t MvServer::refresh(RefreshMode mode) {
  begin_refresh();
  return finish_refresh(mode);
}

std::uint64_t MvServer::update_and_refresh(const std::string& relation,
                                           const UpdateStreamOptions& options,
                                           Rng& rng, RefreshMode mode) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const std::shared_ptr<const ServeSnapshot> cur = snapshot();

  auto next = std::make_shared<ServeSnapshot>();
  next->epoch = cur->epoch + 1;
  Database staging = *cur->db;
  DeployedViewRegistry registry = cur->registry;
  DeltaSet deltas = std::exchange(pending_deltas_, DeltaSet{});
  const auto before = deltas.find(relation);
  const std::size_t rows0 =
      before != deltas.end() ? before->second.row_count() : 0;
  apply_update_batch(staging, relation, options, rng, &deltas);
  const std::size_t rows1 = deltas.at(relation).row_count();
  const std::vector<std::string> marked = registry.mark_stale(relation);
  const std::vector<std::string> pending = registry.pending();
  rebuild_pending(staging, registry, mode, deltas);
  next->db = std::make_shared<const Database>(std::move(staging));
  next->registry = std::move(registry);
  publish(next);
  if (observatory_ != nullptr) {
    JournalEvent ingest_event;
    ingest_event.kind = EventKind::kIngest;
    ingest_event.epoch = next->epoch;
    ingest_event.relation = relation;
    ingest_event.delta_rows = static_cast<double>(rows1 - rows0);
    ingest_event.marked_stale = marked;
    observatory_->record(std::move(ingest_event));
    if (!pending.empty()) {
      JournalEvent refresh_event;
      refresh_event.kind = EventKind::kRefresh;
      refresh_event.epoch = next->epoch;
      refresh_event.refreshed = pending;
      refresh_event.mode = to_string(mode);
      observatory_->record(std::move(refresh_event));
    }
    observatory_->publish_gauges();
  }
  return next->epoch;
}

void MvServer::rebuild_pending(Database& db, DeployedViewRegistry& registry,
                               RefreshMode mode,
                               const DeltaSet& deltas) const {
  const std::vector<std::string> pending = registry.pending();
  if (pending.empty()) return;
  const MvppGraph& graph = design_.graph();
  const MaterializedSet& m = design_.selection.materialized;

  if (mode == RefreshMode::kIncremental && !deltas.empty()) {
    // The incremental walk covers every view a delta reaches — exactly
    // the set ingest marked stale for those relations.
    incremental_refresh(graph, m, db, deltas, nullptr, options_.mode,
                        options_.threads);
  } else {
    for (const NodeId id : m) {
      const MvppNode& node = graph.node(id);
      if (std::find(pending.begin(), pending.end(), node.name) ==
          pending.end()) {
        continue;
      }
      const Executor exec(db, options_.mode, options_.threads);
      db.put_table(node.name, exec.run(refresh_plan(graph, id, m)));
    }
  }
  for (const std::string& name : pending) {
    registry.set_status(name, ViewStatus::kValid);
  }
}

std::uint64_t MvServer::epoch() const { return snapshot()->epoch; }

ViewStatus MvServer::status(const std::string& view) const {
  return snapshot()->registry.status(view);
}

std::vector<RewriteRecord> MvServer::rewrite_log() const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  return rewrite_log_;
}

}  // namespace mvd
